package maxflow

import (
	"math/rand"
	"testing"
)

func TestSimplePath(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 3)
	if got := g.MaxFlow(0, 2); got != 3 {
		t.Errorf("MaxFlow = %d, want 3", got)
	}
}

func TestClassicNetwork(t *testing.T) {
	// CLRS-style example.
	g := New(6)
	g.AddEdge(0, 1, 16)
	g.AddEdge(0, 2, 13)
	g.AddEdge(1, 3, 12)
	g.AddEdge(2, 1, 4)
	g.AddEdge(2, 4, 14)
	g.AddEdge(3, 2, 9)
	g.AddEdge(3, 5, 20)
	g.AddEdge(4, 3, 7)
	g.AddEdge(4, 5, 4)
	if got := g.MaxFlow(0, 5); got != 23 {
		t.Errorf("MaxFlow = %d, want 23", got)
	}
}

func TestDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 7)
	g.AddEdge(2, 3, 7)
	if got := g.MaxFlow(0, 3); got != 0 {
		t.Errorf("MaxFlow = %d, want 0", got)
	}
}

func TestParallelAndAntiparallel(t *testing.T) {
	g := New(2)
	a := g.AddEdge(0, 1, 2)
	b := g.AddEdge(0, 1, 3)
	g.AddEdge(1, 0, 10)
	if got := g.MaxFlow(0, 1); got != 5 {
		t.Errorf("MaxFlow = %d, want 5", got)
	}
	if g.Flow(a)+g.Flow(b) != 5 {
		t.Errorf("edge flows = %d + %d", g.Flow(a), g.Flow(b))
	}
}

func TestFlowAndCapacityAccessors(t *testing.T) {
	g := New(3)
	e := g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 2)
	g.MaxFlow(0, 2)
	if g.Flow(e) != 2 {
		t.Errorf("Flow = %d, want 2", g.Flow(e))
	}
	if g.Capacity(e) != 3 {
		t.Errorf("Capacity = %d, want 3", g.Capacity(e))
	}
}

func TestResidualReachable(t *testing.T) {
	// Bottleneck at the middle edge: after max flow, only the source side
	// of the cut is reachable.
	g := New(4)
	g.AddEdge(0, 1, 10)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 10)
	g.MaxFlow(0, 3)
	r := g.ResidualReachable(0)
	if !r[0] || !r[1] || r[2] || r[3] {
		t.Errorf("ResidualReachable = %v", r)
	}
}

// bruteMinCut enumerates all source-side subsets to find the minimum s-t cut
// of a small network described as explicit edges.
func bruteMinCut(n int, edges [][3]int64, s, t int) int64 {
	best := int64(1) << 62
	for mask := 0; mask < 1<<n; mask++ {
		if mask&(1<<s) == 0 || mask&(1<<t) != 0 {
			continue
		}
		var cut int64
		ok := true
		for _, e := range edges {
			u, v, c := int(e[0]), int(e[1]), e[2]
			if mask&(1<<u) != 0 && mask&(1<<v) == 0 {
				if c >= Inf {
					ok = false
					break
				}
				cut += c
			}
		}
		if ok && cut < best {
			best = cut
		}
	}
	return best
}

// Max-flow equals min-cut on random small networks (strong Dinic check).
func TestMaxFlowEqualsBruteMinCut(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(6)
		var edges [][3]int64
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && rng.Float64() < 0.4 {
					edges = append(edges, [3]int64{int64(u), int64(v), int64(rng.Intn(10))})
				}
			}
		}
		g := New(n)
		for _, e := range edges {
			g.AddEdge(int(e[0]), int(e[1]), e[2])
		}
		s, tt := 0, n-1
		got := g.MaxFlow(s, tt)
		want := bruteMinCut(n, edges, s, tt)
		if got != want {
			t.Fatalf("trial %d: maxflow %d != min cut %d (n=%d edges=%v)", trial, got, want, n, edges)
		}
	}
}

func TestPanics(t *testing.T) {
	check := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		fn()
	}
	check("vertex range", func() { New(2).AddEdge(0, 5, 1) })
	check("negative capacity", func() { New(2).AddEdge(0, 1, -1) })
	check("s==t", func() { New(2).MaxFlow(1, 1) })
}
