package wormhole

import (
	"fmt"
	"math/rand"

	"lambmesh/internal/mesh"
	"lambmesh/internal/routing"
)

// RouteMessage builds a wormhole message from src to dst over a fault-free
// k-round dimension-ordered route, assigning round t's hops to virtual
// channel min(t, vcs-1). With vcs >= k this is the deadlock-free discipline
// of the paper; with fewer VCs rounds share channels and deadlock becomes
// possible — which is exactly what the under-provisioning experiments
// demonstrate.
func RouteMessage(o *routing.Oracle, orders routing.MultiOrder, src, dst mesh.Coord,
	id, length, injectAt, vcs int, rng *rand.Rand) (*Message, error) {
	r, ok := routing.ChooseRouteK(o, orders, src, dst, rng)
	if !ok {
		return nil, fmt.Errorf("wormhole: no fault-free %d-round route from %v to %v", orders.Rounds(), src, dst)
	}
	return MessageFromRoute(o.Mesh(), orders, r, src, dst, id, length, injectAt, vcs)
}

// MessageFromRoute converts an explicit k-round route into a message with
// per-round virtual channels.
func MessageFromRoute(m *mesh.Mesh, orders routing.MultiOrder, r *routing.Route,
	src, dst mesh.Coord, id, length, injectAt, vcs int) (*Message, error) {
	msg := &Message{
		ID:       id,
		Src:      src.Clone(),
		Dst:      dst.Clone(),
		Length:   length,
		InjectAt: injectAt,
	}
	// Recover round boundaries from the stops (src, vias..., dst) and walk
	// each round's dimension-ordered path.
	stops := make([]mesh.Coord, 0, orders.Rounds()+1)
	stops = append(stops, src)
	stops = append(stops, r.Vias...)
	stops = append(stops, dst)
	if len(stops) != orders.Rounds()+1 {
		return nil, fmt.Errorf("wormhole: route has %d vias for %d rounds", len(r.Vias), orders.Rounds())
	}
	for t := 0; t < orders.Rounds(); t++ {
		if m.Torus() {
			// Dateline discipline (Dally–Seitz): round t owns the VC pair
			// (2t, 2t+1). Within each dimension's segment, hops before the
			// wrap link ride the low VC; the wrap hop and everything after it
			// in that dimension ride the high VC, and the class resets at the
			// next dimension. The low class never contains a wrap link (a
			// line, acyclic) and a minimal route cannot wrap a dimension
			// twice, so the high class is a line too — no VC class closes the
			// ring, whence the 2k-VC deadlock freedom on tori.
			vcLo, vcHi := 2*t, 2*t+1
			if vcLo >= vcs {
				vcLo = vcs - 1
			}
			if vcHi >= vcs {
				vcHi = vcs - 1
			}
			seg := routing.Path(m, orders[t], stops[t], stops[t+1])
			curDim, wrapped := -1, false
			for i := 1; i < len(seg); i++ {
				link, err := linkBetween(m, seg[i-1], seg[i])
				if err != nil {
					return nil, err
				}
				if link.Dim != curDim {
					curDim, wrapped = link.Dim, false
				}
				if delta := seg[i][link.Dim] - seg[i-1][link.Dim]; delta > 1 || delta < -1 {
					wrapped = true // coordinates jumped across the dateline
				}
				vc := vcLo
				if wrapped {
					vc = vcHi
				}
				msg.Hops = append(msg.Hops, Hop{Link: link, VC: vc})
			}
			continue
		}
		vc := t
		if vc >= vcs {
			vc = vcs - 1
		}
		seg := routing.Path(m, orders[t], stops[t], stops[t+1])
		for i := 1; i < len(seg); i++ {
			link, err := linkBetween(m, seg[i-1], seg[i])
			if err != nil {
				return nil, err
			}
			msg.Hops = append(msg.Hops, Hop{Link: link, VC: vc})
		}
	}
	msg.PathHops = len(msg.Hops)
	msg.PathTurns = routing.CountTurns(r.Path)
	return msg, nil
}

func linkBetween(m *mesh.Mesh, a, b mesh.Coord) (mesh.Link, error) {
	for dim := range a {
		if a[dim] == b[dim] {
			continue
		}
		for _, dir := range []int{1, -1} {
			if nb, ok := m.Neighbor(a, dim, dir); ok && nb.Equal(b) {
				return mesh.Link{From: a.Clone(), Dim: dim, Dir: dir}, nil
			}
		}
	}
	return mesh.Link{}, fmt.Errorf("wormhole: %v and %v are not neighbors", a, b)
}

// TrafficSpec describes a random survivor-to-survivor workload.
type TrafficSpec struct {
	Messages int
	MinFlits int
	MaxFlits int
	// InjectWindow spreads injection times uniformly over [0, InjectWindow).
	InjectWindow int
}

// GenerateTraffic draws random (src, dst) pairs among survivor nodes (good,
// not lambs) and routes each with the k-round discipline. Pairs with no
// fault-free route are impossible by the lamb-set guarantee, so any routing
// failure is reported as an error rather than skipped.
func GenerateTraffic(o *routing.Oracle, orders routing.MultiOrder, lambs []mesh.Coord,
	spec TrafficSpec, vcs int, rng *rand.Rand) ([]*Message, error) {
	m := o.Mesh()
	survivors := Survivors(o.Faults(), lambs)
	if len(survivors) < 2 {
		return nil, fmt.Errorf("wormhole: fewer than two survivors")
	}
	if spec.MinFlits < 1 {
		spec.MinFlits = 1
	}
	if spec.MaxFlits < spec.MinFlits {
		spec.MaxFlits = spec.MinFlits
	}
	msgs := make([]*Message, 0, spec.Messages)
	for id := 0; id < spec.Messages; id++ {
		var msg *Message
		// With fewer VCs than rounds a random route may revisit a
		// (link, VC) pair, which would self-deadlock; redraw the pair.
		for attempt := 0; ; attempt++ {
			src := survivors[rng.Intn(len(survivors))]
			dst := survivors[rng.Intn(len(survivors))]
			for dst.Equal(src) {
				dst = survivors[rng.Intn(len(survivors))]
			}
			length := spec.MinFlits + rng.Intn(spec.MaxFlits-spec.MinFlits+1)
			injectAt := 0
			if spec.InjectWindow > 0 {
				injectAt = rng.Intn(spec.InjectWindow)
			}
			var err error
			msg, err = RouteMessage(o, orders, src, dst, id, length, injectAt, vcs, rng)
			if err != nil {
				return nil, err
			}
			if !hasVCReuse(m, msg) {
				break
			}
			if attempt >= 50 {
				return nil, fmt.Errorf("wormhole: could not draw a self-overlap-free route with %d VCs", vcs)
			}
		}
		msgs = append(msgs, msg)
	}
	return msgs, nil
}

// hasVCReuse reports whether the message visits any (link, VC) twice.
func hasVCReuse(m *mesh.Mesh, msg *Message) bool {
	seen := make(map[vcKey]bool, len(msg.Hops))
	for _, h := range msg.Hops {
		k := vcKey{from: m.Index(h.Link.From), dim: h.Link.Dim, dir: h.Link.Dir, vc: h.VC}
		if seen[k] {
			return true
		}
		seen[k] = true
	}
	return false
}

// SummaryStats aggregates a finished simulation.
type SummaryStats struct {
	Messages   int
	Delivered  int
	Cycles     int
	Deadlocked bool
	AvgLatency float64
	MaxLatency int
	AvgHops    float64
	AvgTurns   float64
	MaxTurns   int
}

// Summarize collects delivery statistics from a network after Run.
func Summarize(n *Network) SummaryStats {
	s := SummaryStats{Messages: len(n.msgs), Cycles: n.Cycles, Deadlocked: n.Deadlocked}
	var latSum, hopSum, turnSum float64
	for _, m := range n.msgs {
		hopSum += float64(m.PathHops)
		turnSum += float64(m.PathTurns)
		if m.PathTurns > s.MaxTurns {
			s.MaxTurns = m.PathTurns
		}
		if !m.Delivered {
			continue
		}
		s.Delivered++
		lat := m.Latency()
		latSum += float64(lat)
		if lat > s.MaxLatency {
			s.MaxLatency = lat
		}
	}
	if s.Delivered > 0 {
		s.AvgLatency = latSum / float64(s.Delivered)
	}
	if s.Messages > 0 {
		s.AvgHops = hopSum / float64(s.Messages)
		s.AvgTurns = turnSum / float64(s.Messages)
	}
	return s
}
