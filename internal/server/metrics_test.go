package server

import (
	"expvar"
	"strings"
	"testing"
	"time"

	"lambmesh/internal/mesh"
)

func TestRouteHistogramBuckets(t *testing.T) {
	var m Metrics
	for _, hops := range []int{0, 1, 2, 3, 9, 100} {
		m.ObserveRoute(hops)
	}
	var b strings.Builder
	m.WriteTo(&b, 7, 3*time.Second, 42)
	page := b.String()
	for _, want := range []string{
		`lambd_route_hops_bucket{le="0"} 1`,
		`lambd_route_hops_bucket{le="2"} 3`,
		`lambd_route_hops_bucket{le="4"} 4`,
		`lambd_route_hops_bucket{le="16"} 5`,
		`lambd_route_hops_bucket{le="+Inf"} 6`,
		"lambd_route_hops_count 6",
		"lambd_generation 7",
		"lambd_epoch_age_seconds 3",
		"lambd_route_cache_size 42",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("missing %q in:\n%s", want, page)
		}
	}
}

func TestRecomputeLatencyMean(t *testing.T) {
	var m Metrics
	if m.RecomputeLatency() != 0 {
		t.Error("latency with no recomputes should be 0")
	}
	m.Recomputes.Store(2)
	m.RecomputeNanos.Store(int64(3 * time.Second))
	if got := m.RecomputeLatency(); got != 1500*time.Millisecond {
		t.Errorf("mean latency = %v", got)
	}
}

func TestPublishExpvar(t *testing.T) {
	s := newTestServer(t, 4, 4)
	s.Route(mesh.C(0, 0), mesh.C(0, 0))
	s.PublishExpvar()
	s.PublishExpvar() // idempotent: second publish must not panic
	v := expvar.Get("lambd")
	if v == nil {
		t.Fatal("expvar map not published")
	}
	if !strings.Contains(v.String(), `"queries": 1`) {
		t.Errorf("expvar map: %s", v)
	}
}
