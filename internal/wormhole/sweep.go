package wormhole

// Saturation sweeps: the open-loop methodology's headline plot is packet
// latency versus injection rate, swept from light load to past saturation.
// Each (rate, trial) cell is an independent engine run with its own
// deterministically seeded rng, so the sweep parallelizes over a worker
// pool with bit-identical results at any worker count.

import (
	"fmt"
	"math/rand"

	"lambmesh/internal/mesh"
	"lambmesh/internal/par"
	"lambmesh/internal/routing"
)

// SweepSpec describes an injection-rate saturation sweep.
type SweepSpec struct {
	// Rates are the injection probabilities (packets/node/cycle) to sweep,
	// in the order the results should be reported.
	Rates []float64
	// Trials per rate point; each trial draws an independent workload.
	Trials int
	// Pattern, PacketFlits, HotspotFraction parameterize every workload.
	Pattern         Pattern
	PacketFlits     int
	HotspotFraction float64
	// Warmup/Measure/Drain are the engine phase windows (cycles).
	Warmup, Measure, Drain int
	// Net is the router microarchitecture; Net.VirtualChannels also caps
	// the per-round VC assignment of the generated routes.
	Net Config
	// Seed makes the whole sweep reproducible. Cell (rate i, trial t)
	// derives its rng from Seed, i, and t only, never from scheduling.
	Seed int64
	// Workers bounds the trial-level worker pool; <= 0 means NumCPU.
	Workers int
}

// SweepPoint aggregates the trials of one rate point.
type SweepPoint struct {
	Rate   float64
	Trials int

	OfferedFlitRate  float64 // mean realized offered load, flits/node/cycle
	AcceptedFlitRate float64 // mean accepted throughput, flits/node/cycle
	MeanLatency      float64 // mean over trials of mean sample latency
	P99Latency       float64 // mean over trials of p99 sample latency
	MaxLatency       int     // max over trials

	DeliveredFraction float64 // delivered sample packets / generated
	Saturated         bool    // any trial saturated
	Deadlocked        bool    // any trial tripped the watchdog

	VCMeanUtil []float64 // mean over trials, per VC
}

// RunSweep runs Trials independent engine runs at every rate over the given
// faulty mesh and lamb set, fanning the (rate, trial) cells out over the
// worker pool. The oracle is built once and shared (it is safe for
// concurrent reads); each cell generates, routes, and simulates its own
// workload. Results are deterministic for any worker count.
func RunSweep(f *mesh.FaultSet, orders routing.MultiOrder, lambs []mesh.Coord, spec SweepSpec) ([]SweepPoint, error) {
	if len(spec.Rates) == 0 {
		return nil, fmt.Errorf("wormhole: sweep needs at least one rate")
	}
	if spec.Trials < 1 {
		return nil, fmt.Errorf("wormhole: sweep needs at least one trial per rate")
	}
	for _, r := range spec.Rates {
		if r <= 0 || r > 1 {
			return nil, fmt.Errorf("wormhole: injection rate %v outside (0, 1]", r)
		}
	}
	o := routing.NewOracle(f)
	cells := len(spec.Rates) * spec.Trials
	results := make([]EngineResult, cells)
	errs := make([]error, cells)
	par.Do(spec.Workers, cells, func(ci int) {
		ri, ti := ci/spec.Trials, ci%spec.Trials
		// A fixed odd multiplier spreads the per-cell seeds; any injective
		// map works, determinism is what matters.
		rng := rand.New(rand.NewSource(spec.Seed + 1_000_003*int64(ri) + int64(ti)))
		res, err := runCell(o, orders, lambs, spec, spec.Rates[ri], rng)
		if err != nil {
			errs[ci] = fmt.Errorf("rate %v trial %d: %w", spec.Rates[ri], ti, err)
			return
		}
		results[ci] = res
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	points := make([]SweepPoint, len(spec.Rates))
	for ri, rate := range spec.Rates {
		p := SweepPoint{Rate: rate, Trials: spec.Trials, VCMeanUtil: make([]float64, spec.Net.VirtualChannels)}
		var samples, delivered int
		for ti := 0; ti < spec.Trials; ti++ {
			r := results[ri*spec.Trials+ti]
			p.OfferedFlitRate += r.OfferedFlitRate
			p.AcceptedFlitRate += r.AcceptedFlitRate
			p.MeanLatency += r.MeanLatency
			p.P99Latency += float64(r.P99Latency)
			if r.MaxLatency > p.MaxLatency {
				p.MaxLatency = r.MaxLatency
			}
			samples += r.SamplePackets
			delivered += r.SampleDelivered
			p.Saturated = p.Saturated || r.Saturated
			p.Deadlocked = p.Deadlocked || r.Deadlocked
			for v := range p.VCMeanUtil {
				p.VCMeanUtil[v] += r.VCMeanUtil[v]
			}
		}
		n := float64(spec.Trials)
		p.OfferedFlitRate /= n
		p.AcceptedFlitRate /= n
		p.MeanLatency /= n
		p.P99Latency /= n
		for v := range p.VCMeanUtil {
			p.VCMeanUtil[v] /= n
		}
		if samples > 0 {
			p.DeliveredFraction = float64(delivered) / float64(samples)
		}
		points[ri] = p
	}
	return points, nil
}

// runCell is one (rate, trial) cell: generate, build, run.
func runCell(o *routing.Oracle, orders routing.MultiOrder, lambs []mesh.Coord,
	spec SweepSpec, rate float64, rng *rand.Rand) (EngineResult, error) {
	wl := WorkloadSpec{
		Pattern:         spec.Pattern,
		Rate:            rate,
		PacketFlits:     spec.PacketFlits,
		Cycles:          spec.Warmup + spec.Measure,
		HotspotFraction: spec.HotspotFraction,
	}
	packets, err := GenerateWorkload(o, orders, lambs, wl, spec.Net.VirtualChannels, rng)
	if err != nil {
		return EngineResult{}, err
	}
	nodes := survivorCount(o.Faults(), lambs)
	eng, err := NewEngine(o.Faults(), EngineConfig{
		Net:           spec.Net,
		WarmupCycles:  spec.Warmup,
		MeasureCycles: spec.Measure,
		DrainCycles:   spec.Drain,
		Nodes:         nodes,
	}, packets)
	if err != nil {
		return EngineResult{}, err
	}
	return eng.Run(), nil
}

// survivorCount avoids materializing the survivor list per cell.
func survivorCount(f *mesh.FaultSet, lambs []mesh.Coord) int {
	n := int(f.Mesh().Nodes()) - f.NumNodeFaults()
	seen := make(map[int64]struct{}, len(lambs))
	m := f.Mesh()
	for _, c := range lambs {
		idx := m.Index(c)
		if _, dup := seen[idx]; dup || f.NodeFaulty(c) {
			continue
		}
		seen[idx] = struct{}{}
		n--
	}
	return n
}
