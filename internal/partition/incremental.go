package partition

import (
	"fmt"
	"sort"

	"lambmesh/internal/mesh"
	"lambmesh/internal/rect"
	"lambmesh/internal/routing"
)

// Incremental maintains one SES or DES partition of a monotonically growing
// fault set, recomputing only what a fault delta touches. Find-SES-Partition
// (Figure 11) peels the last-corrected working dimension: each dirty value
// of that dimension gets an independent recursive sub-partition, and the
// clean values collapse into full-width runs. A new fault therefore only
// perturbs the top-level slices holding its own last coordinate (plus, for
// a link along the last dimension, the two slices it spans) — every other
// slice's sub-partition is reused verbatim from a memo. The assembled
// partition is byte-identical to a from-scratch Scratch.SES/DES call: same
// sets, same order, same representatives (the identity tests pin this).
//
// Each Update returns a Partition owning fresh memory, so previously
// returned partitions stay valid indefinitely — callers diffing epoch N
// against N+1 (the incremental lamb pipeline) rely on that. An Incremental
// is not safe for concurrent use.
type Incremental struct {
	m    *mesh.Mesh
	pi   routing.Order
	kind Kind

	order  routing.Order // working order: pi, or pi.Reverse() for DES
	rev    bool          // DES: reverse each faulty link's direction
	widths []int         // widths[t] = m.Width(order[t])
	inv    []int         // inv[original dim] = working dim

	s Scratch // drives findAscending for dirtied sub-slices

	// Every working-space fault seen so far (owned copies).
	nodes []mesh.Coord
	links []mesh.Link

	// memo[c] = owned working-space rects of dirty top-level slice c.
	memo map[int][]rect.Rect

	touched  map[int]bool // per-Update dirtied slice values (reused)
	subNodes []mesh.Coord // per-slice gather buffers (reused)
	subLinks []mesh.Link
}

// NewIncremental prepares an incremental finder for an initially fault-free
// mesh. Feed the current faults through Update (all at once, or replaying
// the growth history — the partition of a fault set does not depend on the
// arrival order).
func NewIncremental(m *mesh.Mesh, pi routing.Order, kind Kind) (*Incremental, error) {
	if m.Torus() {
		return nil, fmt.Errorf("partition: the rectangular partition algorithm requires a mesh, not a torus (use the generic path)")
	}
	if err := pi.Validate(m.Dims()); err != nil {
		return nil, err
	}
	inc := &Incremental{m: m, pi: pi, kind: kind, order: pi, memo: map[int][]rect.Rect{}, touched: map[int]bool{}}
	if kind == Destination {
		inc.order = pi.Reverse()
		inc.rev = true
	}
	d := m.Dims()
	inc.widths = make([]int, d)
	inc.inv = make([]int, d)
	for t := 0; t < d; t++ {
		inc.widths[t] = m.Width(inc.order[t])
	}
	for t, dim := range inc.order {
		inc.inv[dim] = t
	}
	return inc, nil
}

// Update folds genuinely-new faults (the caller deduplicates; coordinates
// must lie in the mesh) into the maintained fault set and returns the
// partition of the grown set. The result owns its memory.
func (inc *Incremental) Update(nodes []mesh.Coord, links []mesh.Link) *Partition {
	d := len(inc.widths)
	last := d - 1
	clear(inc.touched)
	for _, c := range nodes {
		w := inc.permuteCoord(c)
		inc.nodes = append(inc.nodes, w)
		inc.touched[w[last]] = true
	}
	for _, l := range links {
		wl := inc.permuteLink(l)
		inc.links = append(inc.links, wl)
		inc.touched[wl.From[last]] = true
		if wl.Dim == last {
			// A link along the last working dimension spans two slices and
			// dirties both, exactly as findAscending's step 2(a) does.
			inc.touched[wl.From[last]+wl.Dir] = true
		}
	}
	if d == 1 {
		// No slicing to memoize at d=1; the base case is O(n) anyway.
		inc.s.tmpInts.reset()
		inc.s.tmpIvals.reset()
		return inc.convert(inc.s.findAscending(0, inc.widths, inc.nodes, inc.links))
	}

	// Recompute the dirtied slices' sub-partitions from the full fault
	// lists (a slice's sub-faults are order-independent inputs, so the
	// result matches what a cold top-level recursion would produce).
	inc.s.tmpInts.reset()
	inc.s.tmpIvals.reset()
	for c := range inc.touched {
		inc.subNodes = inc.subNodes[:0]
		for _, v := range inc.nodes {
			if v[last] == c {
				inc.subNodes = append(inc.subNodes, v[:last])
			}
		}
		inc.subLinks = inc.subLinks[:0]
		for _, l := range inc.links {
			if l.Dim != last && l.From[last] == c {
				inc.subLinks = append(inc.subLinks, mesh.Link{From: l.From[:last], Dim: l.Dim, Dir: l.Dir})
			}
		}
		work := inc.s.findAscending(1, inc.widths[:last], inc.subNodes, inc.subLinks)
		rects := make([]rect.Rect, len(work))
		backing := make([]rect.Interval, len(work)*d)
		for wi, sub := range work {
			r := rect.Rect(backing[wi*d : (wi+1)*d : (wi+1)*d])
			copy(r, sub)
			r[last] = rect.Interval{Lo: c, Hi: c}
			rects[wi] = r
		}
		inc.memo[c] = rects
	}
	return inc.assemble()
}

// assemble stitches the memoized dirty slices and the clean runs into a
// fresh Partition, in exactly findAscending's output order: dirty slice
// values ascending (each contributing its sub-partition in order), then
// clean full-width runs ascending.
func (inc *Incremental) assemble() *Partition {
	d := len(inc.widths)
	last := d - 1
	n := inc.widths[last]
	vals := make([]int, 0, len(inc.memo))
	for c := range inc.memo {
		vals = append(vals, c)
	}
	sort.Ints(vals)

	total := 0
	for _, c := range vals {
		total += len(inc.memo[c])
	}
	work := make([]rect.Rect, 0, total+len(vals)+1)
	for _, c := range vals {
		work = append(work, inc.memo[c]...)
	}
	// Clean runs: the gaps between consecutive dirty values.
	emit := func(lo, hi int) {
		if lo > hi {
			return
		}
		r := make(rect.Rect, d)
		for j := 0; j < last; j++ {
			r[j] = rect.Interval{Lo: 0, Hi: inc.widths[j] - 1}
		}
		r[last] = rect.Interval{Lo: lo, Hi: hi}
		work = append(work, r)
	}
	prev := -1
	for _, c := range vals {
		emit(prev+1, c-1)
		prev = c
	}
	emit(prev+1, n-1)
	return inc.convert(work)
}

// convert maps working-space rects back to original dimensions, with the
// min corner as representative — the same conversion Scratch.find performs,
// but into memory owned by the returned Partition.
func (inc *Incremental) convert(work []rect.Rect) *Partition {
	d := len(inc.widths)
	p := &Partition{Kind: inc.kind, Order: inc.pi, Sets: make([]Set, 0, len(work))}
	ivals := make([]rect.Interval, len(work)*d)
	ints := make([]int, len(work)*d)
	for wi, wr := range work {
		r := rect.Rect(ivals[wi*d : (wi+1)*d : (wi+1)*d])
		for j := 0; j < d; j++ {
			r[j] = wr[inc.inv[j]]
		}
		rep := mesh.Coord(ints[wi*d : (wi+1)*d : (wi+1)*d])
		for j, iv := range r {
			rep[j] = iv.Lo
		}
		p.Sets = append(p.Sets, Set{Rect: r, Rep: rep})
	}
	return p
}

func (inc *Incremental) permuteCoord(c mesh.Coord) mesh.Coord {
	out := make(mesh.Coord, len(c))
	for t, dim := range inc.order {
		out[t] = c[dim]
	}
	return out
}

func (inc *Incremental) permuteLink(l mesh.Link) mesh.Link {
	wl := mesh.Link{From: inc.permuteCoord(l.From), Dim: inc.inv[l.Dim], Dir: l.Dir}
	if inc.rev {
		// DES duality: reverse the directed link — the new tail is the old
		// head (the permuted coord is a private copy; mutate in place).
		wl.From[wl.Dim] += wl.Dir
		wl.Dir = -wl.Dir
	}
	return wl
}
