package reach

import (
	"math/rand"
	"testing"

	"lambmesh/internal/mesh"
	"lambmesh/internal/routing"
)

// ComputeWorkers must produce bit-identical matrices for every worker
// count, including on non-uniform orderings where the per-round R_t/I_t
// builds themselves run in parallel.
func TestComputeWorkersDeterministic(t *testing.T) {
	m := mesh.MustNew(10, 10, 10)
	rng := rand.New(rand.NewSource(21))
	f := mesh.RandomNodeFaults(m, 60, rng)

	orderings := []routing.MultiOrder{
		routing.UniformAscending(3, 2),
		// Non-uniform: distinct per-round orderings exercise the
		// per-round-parallel path (no shared cache entries).
		{routing.Order{0, 1, 2}, routing.Order{2, 1, 0}, routing.Order{1, 0, 2}},
	}
	for oi, orders := range orderings {
		base, err := ComputeWorkers(f, orders, 1)
		if err != nil {
			t.Fatalf("ordering %d serial: %v", oi, err)
		}
		for _, workers := range []int{2, 3, 0} {
			got, err := ComputeWorkers(f, orders, workers)
			if err != nil {
				t.Fatalf("ordering %d workers=%d: %v", oi, workers, err)
			}
			if !got.RK.Equal(base.RK) {
				t.Errorf("ordering %d: R^(k) differs at workers=%d", oi, workers)
			}
			for tt := range base.R {
				if !got.R[tt].Equal(base.R[tt]) {
					t.Errorf("ordering %d: R[%d] differs at workers=%d", oi, tt, workers)
				}
			}
			for tt := range base.I {
				if !got.I[tt].Equal(base.I[tt]) {
					t.Errorf("ordering %d: I[%d] differs at workers=%d", oi, tt, workers)
				}
			}
		}
	}
}

// The parallel sweep path must agree with both its serial self and the
// matrix path.
func TestSweepWorkersDeterministic(t *testing.T) {
	m := mesh.MustNew(9, 9)
	rng := rand.New(rand.NewSource(22))
	f := mesh.RandomNodeFaults(m, 10, rng)
	orders := routing.UniformAscending(2, 2)

	base, err := ComputeWithSweepWorkers(f, orders, 1)
	if err != nil {
		t.Fatal(err)
	}
	matrix, err := ComputeWorkers(f, orders, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !base.RK.Equal(matrix.RK) {
		t.Fatal("sweep and matrix R^(k) disagree (pre-existing bug, not parallelism)")
	}
	for _, workers := range []int{2, 4, 0} {
		got, err := ComputeWithSweepWorkers(f, orders, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !got.RK.Equal(base.RK) {
			t.Errorf("sweep R^(k) differs at workers=%d", workers)
		}
	}
}
