package rect

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lambmesh/internal/mesh"
)

func TestIntervalBasics(t *testing.T) {
	iv := Interval{2, 5}
	if iv.Len() != 4 {
		t.Errorf("Len = %d", iv.Len())
	}
	if !iv.Contains(2) || !iv.Contains(5) || iv.Contains(6) || iv.Contains(1) {
		t.Error("Contains wrong")
	}
	empty := Interval{5, 2}
	if empty.Len() != 0 {
		t.Errorf("empty Len = %d", empty.Len())
	}
	got := iv.Intersect(Interval{4, 9})
	if got != (Interval{4, 5}) {
		t.Errorf("Intersect = %v", got)
	}
}

func TestRectSizeAndContains(t *testing.T) {
	m := mesh.MustNew(12, 12)
	r := Rect{{0, 11}, {2, 5}} // (*, [2,5])
	if r.Size() != 48 {
		t.Errorf("Size = %d, want 48", r.Size())
	}
	if !r.Contains(mesh.C(7, 3)) || r.Contains(mesh.C(7, 6)) {
		t.Error("Contains wrong")
	}
	if got := r.StringIn(m); got != "(*,[2,5])" {
		t.Errorf("StringIn = %q", got)
	}
	p := Point(mesh.C(3, 4))
	if p.Size() != 1 || !p.Contains(mesh.C(3, 4)) {
		t.Error("Point wrong")
	}
	if got := p.StringIn(m); got != "(3,4)" {
		t.Errorf("Point StringIn = %q", got)
	}
	full := Full(m)
	if full.Size() != 144 {
		t.Errorf("Full Size = %d", full.Size())
	}
	if got := full.StringIn(m); got != "(*,*)" {
		t.Errorf("Full StringIn = %q", got)
	}
}

func TestRectIntersect(t *testing.T) {
	a := Rect{{0, 5}, {3, 8}}
	b := Rect{{4, 9}, {0, 3}}
	got := a.Intersect(b)
	want := Rect{{4, 5}, {3, 3}}
	if got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if !a.Intersects(b) {
		t.Error("Intersects should be true")
	}
	c := Rect{{6, 9}, {0, 2}}
	if a.Intersects(c) {
		t.Error("Intersects should be false")
	}
	if !a.Intersect(c).Empty() {
		t.Error("empty intersection expected")
	}
}

// Intersects must agree with materialized intersection emptiness.
func TestIntersectsQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randRect := func() Rect {
		r := make(Rect, 3)
		for i := range r {
			a, b := rng.Intn(6), rng.Intn(6)
			r[i] = Interval{a, b} // possibly empty
		}
		return r
	}
	for trial := 0; trial < 2000; trial++ {
		a, b := randRect(), randRect()
		fast := a.Intersects(b)
		slow := !a.Intersect(b).Empty()
		if fast != slow {
			t.Fatalf("Intersects(%v,%v) = %v but materialized = %v", a, b, fast, slow)
		}
	}
}

func TestForEachMatchesSize(t *testing.T) {
	f := func(l0, h0, l1, h1 uint) bool {
		r := Rect{
			{int(l0 % 5), int(h0 % 5)},
			{int(l1 % 4), int(h1 % 4)},
		}
		count := int64(0)
		seen := map[string]bool{}
		r.ForEach(func(c mesh.Coord) {
			count++
			if !r.Contains(c) {
				t.Fatalf("ForEach yielded %v outside %v", c, r)
			}
			seen[c.String()] = true
		})
		return count == r.Size() && int64(len(seen)) == r.Size()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNodes(t *testing.T) {
	r := Rect{{1, 2}, {3, 3}}
	got := r.Nodes()
	if len(got) != 2 || !got[0].Equal(mesh.C(1, 3)) || !got[1].Equal(mesh.C(2, 3)) {
		t.Errorf("Nodes = %v", got)
	}
}

func TestMinCorner(t *testing.T) {
	r := Rect{{3, 7}, {2, 2}, {0, 5}}
	if !r.MinCorner().Equal(mesh.C(3, 2, 0)) {
		t.Errorf("MinCorner = %v", r.MinCorner())
	}
}

func TestPermute(t *testing.T) {
	r := Rect{{0, 1}, {2, 3}, {4, 5}}
	p := r.Permute([]int{2, 0, 1})
	want := Rect{{4, 5}, {0, 1}, {2, 3}}
	for i := range p {
		if p[i] != want[i] {
			t.Fatalf("Permute = %v, want %v", p, want)
		}
	}
}

func TestClone(t *testing.T) {
	r := Rect{{0, 1}, {2, 3}}
	c := r.Clone()
	c[0] = Interval{9, 9}
	if r[0] != (Interval{0, 1}) {
		t.Error("Clone aliases")
	}
}

func TestAll(t *testing.T) {
	r := Rect{{1, 3}, {2, 2}}
	if !r.All(func(c mesh.Coord) bool { return c[1] == 2 }) {
		t.Error("All should hold")
	}
	count := 0
	stopped := r.All(func(c mesh.Coord) bool {
		count++
		return c[0] < 2 // fails at (2,2), the second node
	})
	if stopped {
		t.Error("All should fail")
	}
	if count != 2 {
		t.Errorf("All should stop early, visited %d", count)
	}
	empty := Rect{{3, 1}, {0, 0}}
	if !empty.All(func(mesh.Coord) bool { return false }) {
		t.Error("empty box satisfies All vacuously")
	}
}

func TestString(t *testing.T) {
	r := Rect{{1, 3}, {2, 2}}
	if got := r.String(); got != "([1,3],2)" {
		t.Errorf("String = %q", got)
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"Intersect":  func() { (Rect{{0, 1}}).Intersect(Rect{{0, 1}, {0, 1}}) },
		"Intersects": func() { (Rect{{0, 1}}).Intersects(Rect{{0, 1}, {0, 1}}) },
		"MinCorner":  func() { (Rect{{1, 0}}).MinCorner() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			fn()
		}()
	}
	if (Rect{{0, 1}}).Contains(mesh.C(0, 0)) {
		t.Error("dimension mismatch Contains should be false")
	}
}
