// Package bitmat provides Boolean matrices packed 64 entries per word, with
// the sparsity-aware products that Section 6.2 of Ho & Stockmeyer (IPDPS
// 2002) relies on: the reachability computation forms R^(k) =
// R_1 I_1 R_2 ... I_{k-1} R_k over Boolean semiring products, and the paper
// notes that intersection matrices are typically sparse and that bitwise
// word operations give a large constant-factor speedup (they used 32-bit
// words; we use 64-bit).
package bitmat

import (
	"fmt"
	"math/bits"
	"strings"

	"lambmesh/internal/par"
)

// Matrix is a dense Boolean matrix with rows packed into 64-bit words.
type Matrix struct {
	rows, cols int
	stride     int // words per row
	bits       []uint64
}

// New returns an all-zero rows x cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("bitmat: negative dimension")
	}
	stride := (cols + 63) / 64
	return &Matrix{rows: rows, cols: cols, stride: stride, bits: make([]uint64, rows*stride)}
}

// FromRows builds a matrix from a [][]bool literal; handy in tests.
func FromRows(rows [][]bool) *Matrix {
	r := len(rows)
	c := 0
	if r > 0 {
		c = len(rows[0])
	}
	m := New(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic("bitmat: ragged rows")
		}
		for j, v := range row {
			if v {
				m.Set(i, j)
			}
		}
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// Set sets entry (i, j) to 1.
func (m *Matrix) Set(i, j int) {
	m.check(i, j)
	m.bits[i*m.stride+j/64] |= 1 << uint(j%64)
}

// Clear sets entry (i, j) to 0.
func (m *Matrix) Clear(i, j int) {
	m.check(i, j)
	m.bits[i*m.stride+j/64] &^= 1 << uint(j%64)
}

// Get returns entry (i, j).
func (m *Matrix) Get(i, j int) bool {
	m.check(i, j)
	return m.bits[i*m.stride+j/64]&(1<<uint(j%64)) != 0
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("bitmat: index (%d,%d) outside %dx%d", i, j, m.rows, m.cols))
	}
}

// row returns the packed words of row i.
func (m *Matrix) row(i int) []uint64 {
	return m.bits[i*m.stride : (i+1)*m.stride]
}

// OrRowInto ORs row i of m into dst, which must have the same column count.
func (m *Matrix) OrRowInto(i int, dst *Matrix, di int) {
	if m.cols != dst.cols {
		panic("bitmat: column mismatch")
	}
	src := m.row(i)
	d := dst.row(di)
	for w := range src {
		d[w] |= src[w]
	}
}

// Mul returns the Boolean product m x o (OR of ANDs). It walks the set bits
// of each row of m and ORs in the corresponding rows of o, so the cost is
// O(nnz(m) * cols(o)/64): sparse left operands are cheap and dense ones
// degrade gracefully to the packed dense product.
func (m *Matrix) Mul(o *Matrix) *Matrix {
	return m.MulParallel(o, 1)
}

// MulParallel is Mul with the rows of the output filled by up to `workers`
// goroutines (<= 0 means NumCPU). Output rows occupy disjoint word ranges,
// so the result is bit-identical to Mul for every worker count.
func (m *Matrix) MulParallel(o *Matrix, workers int) *Matrix {
	if m.cols != o.rows {
		panic(fmt.Sprintf("bitmat: %dx%d * %dx%d", m.rows, m.cols, o.rows, o.cols))
	}
	out := New(m.rows, o.cols)
	m.mulInto(out, o, workers)
	return out
}

// mulInto fills out (all-zero, m.rows x o.cols) with the product m x o,
// row-block parallel across workers.
func (m *Matrix) mulInto(out, o *Matrix, workers int) {
	// Serial fast path: skip the closure (which escapes through par.Blocks
	// and would cost a heap allocation per product even at workers=1).
	if workers <= 1 {
		m.mulRows(out, o, 0, m.rows)
		return
	}
	par.Blocks(workers, m.rows, func(lo, hi int) {
		m.mulRows(out, o, lo, hi)
	})
}

// mulRows computes output rows [lo, hi) of m x o.
func (m *Matrix) mulRows(out, o *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		src := m.row(i)
		dst := out.row(i)
		for w, word := range src {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &= word - 1
				k := w*64 + b
				orow := o.row(k)
				for x := range orow {
					dst[x] |= orow[x]
				}
			}
		}
	}
}

// MulChain multiplies a sequence of conformant matrices left to right.
func MulChain(ms ...*Matrix) *Matrix {
	return MulChainParallel(1, ms...)
}

// MulChainParallel is MulChain with each product row-block parallel across
// `workers` goroutines (<= 0 means NumCPU). Intermediate products cycle
// through a double-buffered scratch pair instead of allocating one matrix
// per step, so a chain of any length costs at most two intermediate
// allocations (amortized fewer when sizes shrink along the chain). The
// inputs are never written; the result never aliases an input unless the
// chain has length one, in which case ms[0] itself is returned.
func MulChainParallel(workers int, ms ...*Matrix) *Matrix {
	var scratch [2]*Matrix
	return MulChainScratch(workers, &scratch, ms...)
}

// MulChainScratch is MulChainParallel with a caller-owned double-buffer
// pair, so repeated chain products (one per lamb computation, say) stop
// allocating once the buffers have grown to the working-set size. The result
// aliases one of the scratch buffers (or ms[0] for a length-one chain) and
// is valid until the next call with the same pair.
func MulChainScratch(workers int, scratch *[2]*Matrix, ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		panic("bitmat: empty chain")
	}
	cur := ms[0]
	for step, m := range ms[1:] {
		if cur.cols != m.rows {
			panic(fmt.Sprintf("bitmat: %dx%d * %dx%d", cur.rows, cur.cols, m.rows, m.cols))
		}
		buf := scratch[step%2].reset(cur.rows, m.cols)
		scratch[step%2] = buf
		cur.mulInto(buf, m, workers)
		cur = buf
	}
	return cur
}

// Reset returns an all-zero rows x cols matrix, reusing m's storage when it
// is large enough (m may be nil). It is the building block of the matrix
// pools that recycle reachability matrices across rounds and across calls.
func (m *Matrix) Reset(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("bitmat: negative dimension")
	}
	return m.reset(rows, cols)
}

// reset returns an all-zero rows x cols matrix, reusing m's storage when it
// is large enough. m may be nil.
func (m *Matrix) reset(rows, cols int) *Matrix {
	stride := (cols + 63) / 64
	need := rows * stride
	if m == nil || cap(m.bits) < need {
		return New(rows, cols)
	}
	m.rows, m.cols, m.stride = rows, cols, stride
	m.bits = m.bits[:need]
	clear(m.bits)
	return m
}

// Ones counts the set entries.
func (m *Matrix) Ones() int {
	n := 0
	for _, w := range m.bits {
		n += bits.OnesCount64(w)
	}
	return n
}

// Density returns Ones / (rows*cols), or 0 for an empty matrix.
func (m *Matrix) Density() float64 {
	total := m.rows * m.cols
	if total == 0 {
		return 0
	}
	return float64(m.Ones()) / float64(total)
}

// AllOnes reports whether every entry is 1.
func (m *Matrix) AllOnes() bool { return m.Ones() == m.rows*m.cols }

// ZeroRows returns the indices of rows containing at least one zero —
// the "relevant SESs" of Reduce-WVC (Figure 13).
func (m *Matrix) ZeroRows() []int {
	return m.AppendZeroRows(nil)
}

// AppendZeroRows appends the zero-row indices to dst and returns it,
// reusing dst's backing array — the allocation-free form of ZeroRows.
func (m *Matrix) AppendZeroRows(dst []int) []int {
	for i := 0; i < m.rows; i++ {
		if m.rowOnes(i) != m.cols {
			dst = append(dst, i)
		}
	}
	return dst
}

// ZeroCols returns the indices of columns containing at least one zero —
// the "relevant DESs" of Reduce-WVC.
func (m *Matrix) ZeroCols() []int {
	return m.AppendZeroCols(nil, nil)
}

// AppendZeroCols appends the zero-column indices to dst and returns it.
// countsBuf, when non-nil, is a reusable scratch buffer for the per-column
// popcounts (grown in place as needed); passing the same pointer across
// calls makes this allocation-free in steady state.
func (m *Matrix) AppendZeroCols(dst []int, countsBuf *[]int) []int {
	var counts []int
	if countsBuf != nil {
		counts = *countsBuf
	}
	if cap(counts) < m.cols {
		counts = make([]int, m.cols)
		if countsBuf != nil {
			*countsBuf = counts
		}
	}
	counts = counts[:m.cols]
	clear(counts)
	for i := 0; i < m.rows; i++ {
		row := m.row(i)
		for w, word := range row {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &= word - 1
				counts[w*64+b]++
			}
		}
	}
	for j, c := range counts {
		if c != m.rows {
			dst = append(dst, j)
		}
	}
	return dst
}

func (m *Matrix) rowOnes(i int) int {
	n := 0
	for _, w := range m.row(i) {
		n += bits.OnesCount64(w)
	}
	return n
}

// Equal reports entry-wise equality.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i := range m.bits {
		if m.bits[i] != o.bits[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := New(m.rows, m.cols)
	copy(out.bits, m.bits)
	return out
}

// String renders the matrix as rows of 0/1, like the paper's Tables 1 and 2.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			if m.Get(i, j) {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
