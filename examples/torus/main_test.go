package main

import (
	"io"
	"strings"
	"testing"
)

// TestDemos runs every demo and pins the load-bearing lines, so the example
// stays a working walkthrough rather than drifting from the API.
func TestDemos(t *testing.T) {
	cases := []struct {
		name string
		demo func(io.Writer) error
		want []string
	}{
		{"torus", torusDemo, []string{
			"mesh  M_2(6)", "torus T_2(6)",
		}},
		{"hypercube", hypercubeDemo, []string{
			"Q_5", "(verified)",
		}},
		{"topology", topologyDemo, []string{
			`mesh      M_2(6x6)`,
			`torus     T_2(6x6)`,
			`hypercube Q_5`,
			`fullmesh  K_12`,
			`"mesh 6x6"`, `"torus 6x6"`, `"hypercube 5"`, `"fullmesh 12"`,
		}},
		{"values", valuesDemo, []string{"lamb set shifts"}},
		{"predetermined", predeterminedDemo, []string{"first lamb set:", "after new fault:"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out strings.Builder
			if err := tc.demo(&out); err != nil {
				t.Fatal(err)
			}
			for _, want := range tc.want {
				if !strings.Contains(out.String(), want) {
					t.Errorf("output missing %q:\n%s", want, out.String())
				}
			}
		})
	}
}
