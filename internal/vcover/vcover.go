// Package vcover solves weighted vertex cover (WVC) problems — the
// combinatorial core that lamb minimization reduces to (Section 6.3 of Ho &
// Stockmeyer, IPDPS 2002).
//
// Three solvers are provided, matching the paper's toolbox:
//
//   - SolveBipartite: exact minimum-weight vertex cover on a bipartite
//     graph via max-flow/min-cut [Gusfield 1992], polynomial time. Used by
//     Lamb1 (Section 6.3.1).
//   - Approx2: the Bar-Yehuda & Even linear-time 2-approximation for
//     general graphs [BYE 1981]. Used by Lamb2 as the fast option
//     (Section 6.3.2).
//   - SolveExact: branch-and-bound exact WVC for general graphs,
//     exponential time, usable for the small instances in Corollary 6.10
//     and in tests.
package vcover

import (
	"fmt"
	"sort"

	"lambmesh/internal/maxflow"
)

// Bipartite is a vertex-weighted bipartite graph with p left vertices and q
// right vertices. Weights must be positive for vertices incident to edges.
type Bipartite struct {
	LeftWeight  []int64
	RightWeight []int64
	// Edges[i] lists the right neighbors of left vertex i.
	Edges [][]int
}

// Cover is a vertex cover of a Bipartite: which left and right vertices are
// chosen, plus the total weight.
type Cover struct {
	Left   []bool
	Right  []bool
	Weight int64
}

// SolveBipartite returns a minimum-weight vertex cover of g, exactly, via
// min-cut: source->left_i with capacity w(left_i), right_j->sink with
// capacity w(right_j), and infinite-capacity edges across. A left vertex is
// in the cover iff its source edge is cut (unreachable in the residual
// graph); a right vertex iff its sink edge is cut (reachable).
func SolveBipartite(g *Bipartite) *Cover {
	p, q := len(g.LeftWeight), len(g.RightWeight)
	fg := maxflow.New(p + q + 2)
	src, sink := p+q, p+q+1
	for i, w := range g.LeftWeight {
		if w < 0 {
			panic(fmt.Sprintf("vcover: negative weight on left %d", i))
		}
		fg.AddEdge(src, i, w)
	}
	for j, w := range g.RightWeight {
		if w < 0 {
			panic(fmt.Sprintf("vcover: negative weight on right %d", j))
		}
		fg.AddEdge(p+j, sink, w)
	}
	for i, ns := range g.Edges {
		for _, j := range ns {
			fg.AddEdge(i, p+j, maxflow.Inf)
		}
	}
	fg.MaxFlow(src, sink)
	reach := fg.ResidualReachable(src)
	c := &Cover{Left: make([]bool, p), Right: make([]bool, q)}
	for i := 0; i < p; i++ {
		if !reach[i] {
			c.Left[i] = true
			c.Weight += g.LeftWeight[i]
		}
	}
	for j := 0; j < q; j++ {
		if reach[p+j] {
			c.Right[j] = true
			c.Weight += g.RightWeight[j]
		}
	}
	return c
}

// Validate reports an error if c is not a vertex cover of g.
func (g *Bipartite) Validate(c *Cover) error {
	for i, ns := range g.Edges {
		for _, j := range ns {
			if !c.Left[i] && !c.Right[j] {
				return fmt.Errorf("vcover: edge (left %d, right %d) uncovered", i, j)
			}
		}
	}
	return nil
}

// General is a vertex-weighted undirected graph given by an adjacency list.
// Edges may appear in either or both endpoint lists; duplicates are
// harmless.
type General struct {
	Weight []int64
	Adj    [][]int
}

// edgeList returns each undirected edge once as an ordered pair.
func (g *General) edgeList() [][2]int {
	seen := make(map[[2]int]bool)
	var out [][2]int
	for u, ns := range g.Adj {
		for _, v := range ns {
			if u == v {
				panic("vcover: self-loop cannot be covered meaningfully")
			}
			a, b := u, v
			if a > b {
				a, b = b, a
			}
			k := [2]int{a, b}
			if !seen[k] {
				seen[k] = true
				out = append(out, k)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// ValidateGeneral reports an error if pick is not a vertex cover of g.
func (g *General) ValidateGeneral(pick []bool) error {
	for _, e := range g.edgeList() {
		if !pick[e[0]] && !pick[e[1]] {
			return fmt.Errorf("vcover: edge (%d,%d) uncovered", e[0], e[1])
		}
	}
	return nil
}

// WeightOf sums the weights of the picked vertices.
func (g *General) WeightOf(pick []bool) int64 {
	var w int64
	for v, p := range pick {
		if p {
			w += g.Weight[v]
		}
	}
	return w
}

// Approx2 returns a vertex cover of weight at most twice the minimum, by
// the Bar-Yehuda & Even local-ratio rule: for each edge, pay the smaller
// remaining weight of its endpoints against both; vertices whose weight
// reaches zero enter the cover. Runs in time linear in the number of edges.
func Approx2(g *General) []bool {
	remaining := append([]int64(nil), g.Weight...)
	pick := make([]bool, len(g.Weight))
	for _, e := range g.edgeList() {
		u, v := e[0], e[1]
		if pick[u] || pick[v] {
			continue
		}
		m := remaining[u]
		if remaining[v] < m {
			m = remaining[v]
		}
		remaining[u] -= m
		remaining[v] -= m
		if remaining[u] == 0 {
			pick[u] = true
		}
		if remaining[v] == 0 && !pick[u] {
			pick[v] = true
		}
	}
	return pick
}

// SolveExact returns a minimum-weight vertex cover of g by branch and
// bound: repeatedly pick an uncovered edge and branch on including either
// endpoint. Exponential in the worst case; intended for instances with at
// most a few dozen relevant vertices (Corollary 6.10 territory).
func SolveExact(g *General) []bool {
	edges := g.edgeList()
	n := len(g.Weight)
	best := make([]bool, n)
	// Start from the trivial cover of all endpoint vertices.
	for _, e := range edges {
		best[e[0]] = true
		best[e[1]] = true
	}
	bestW := g.WeightOf(best)
	cur := make([]bool, n)
	var rec func(ei int, curW int64)
	rec = func(ei int, curW int64) {
		if curW >= bestW {
			return
		}
		// Find the next uncovered edge.
		for ei < len(edges) && (cur[edges[ei][0]] || cur[edges[ei][1]]) {
			ei++
		}
		if ei == len(edges) {
			bestW = curW
			copy(best, cur)
			return
		}
		u, v := edges[ei][0], edges[ei][1]
		cur[u] = true
		rec(ei+1, curW+g.Weight[u])
		cur[u] = false
		cur[v] = true
		rec(ei+1, curW+g.Weight[v])
		cur[v] = false
	}
	rec(0, 0)
	return best
}
