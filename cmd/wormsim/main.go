// Command wormsim runs a flit-level wormhole-routing simulation over a
// faulty mesh: it computes a lamb set, generates random survivor-to-
// survivor traffic routed with k rounds of dimension-ordered routing, and
// reports delivery, latency, turn, and deadlock statistics.
//
// Usage:
//
//	wormsim -mesh 16x16 -faults 10 -messages 200 -vcs 2 -k 2
//	        [-flits-min 4 -flits-max 16] [-buffer 2] [-window 100] [-seed 1]
//
// Setting -vcs below -k under-provisions the router and lets you watch for
// the deadlocks that one-VC-per-round is designed to prevent.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"lambmesh/internal/core"
	"lambmesh/internal/mesh"
	"lambmesh/internal/routing"
	"lambmesh/internal/wormhole"
)

func main() {
	var (
		meshFlag = flag.String("mesh", "16x16", "mesh widths, e.g. 16x16 or 8x8x8")
		nFaults  = flag.Int("faults", 10, "random node faults")
		messages = flag.Int("messages", 200, "messages to inject")
		k        = flag.Int("k", 2, "routing rounds")
		vcs      = flag.Int("vcs", 2, "virtual channels per link")
		buffer   = flag.Int("buffer", 2, "per-VC buffer depth (flits)")
		flitsMin = flag.Int("flits-min", 4, "minimum message length (flits)")
		flitsMax = flag.Int("flits-max", 16, "maximum message length (flits)")
		window   = flag.Int("window", 100, "injection window (cycles)")
		seed     = flag.Int64("seed", 1, "rng seed")
	)
	flag.Parse()
	rng := rand.New(rand.NewSource(*seed))

	widths, err := parseWidths(*meshFlag)
	if err != nil {
		log.Fatal(err)
	}
	m, err := mesh.New(widths...)
	if err != nil {
		log.Fatal(err)
	}
	faults := mesh.RandomNodeFaults(m, *nFaults, rng)
	orders := routing.UniformAscending(m.Dims(), *k)

	res, err := core.Lamb1(faults, orders)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mesh %v, %d faults, %d lambs, %d survivors, routing %v on %d VCs\n",
		m, faults.Count(), res.NumLambs(), res.Survivors(faults), orders, *vcs)

	oracle := routing.NewOracle(faults)
	msgs, err := wormhole.GenerateTraffic(oracle, orders, res.Lambs, wormhole.TrafficSpec{
		Messages: *messages, MinFlits: *flitsMin, MaxFlits: *flitsMax, InjectWindow: *window,
	}, *vcs, rng)
	if err != nil {
		log.Fatal(err)
	}
	cfg := wormhole.Config{
		VirtualChannels: *vcs,
		BufferDepth:     *buffer,
		StallCycles:     2000,
		MaxCycles:       5_000_000,
	}
	net, err := wormhole.NewNetwork(faults, cfg, msgs)
	if err != nil {
		log.Fatal(err)
	}
	if err := net.Run(); err != nil {
		log.Fatal(err)
	}
	s := wormhole.Summarize(net)
	fmt.Printf("delivered:  %d/%d\n", s.Delivered, s.Messages)
	fmt.Printf("deadlock:   %v\n", s.Deadlocked)
	fmt.Printf("cycles:     %d (total flit movements %d)\n", s.Cycles, net.MovesTotal)
	fmt.Printf("latency:    avg %.1f, max %d cycles\n", s.AvgLatency, s.MaxLatency)
	fmt.Printf("turns:      avg %.2f, max %d (dimension-ordered bound kd-1 = %d)\n",
		s.AvgTurns, s.MaxTurns, *k*m.Dims()-1)
}

func parseWidths(s string) ([]int, error) {
	var widths []int
	cur := 0
	seen := false
	for _, r := range s {
		switch {
		case r >= '0' && r <= '9':
			cur = cur*10 + int(r-'0')
			seen = true
		case r == 'x' && seen:
			widths = append(widths, cur)
			cur, seen = 0, false
		default:
			return nil, fmt.Errorf("bad mesh spec %q", s)
		}
	}
	if !seen {
		return nil, fmt.Errorf("bad mesh spec %q", s)
	}
	return append(widths, cur), nil
}
