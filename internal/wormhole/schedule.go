package wormhole

// Fault schedules describe faults that arrive while traffic is flowing —
// the online-recovery regime the lamb method exists for: lamb-finding time
// depends on f, not N, so reconfiguring after a mid-run fault is cheap.
// A schedule is a list of events, each a set of node and link faults that
// strike at the start of a simulation cycle; the live engine (live.go)
// applies them between cycles and measures how long accepted throughput
// takes to recover.
//
// The text format mirrors the fault-file format of internal/mesh:
//
//	# lambmesh fault schedule: 2 events
//	event 500
//	node 3,4
//	link 1,1 0 +1
//	event 900
//	node 7,7
//
// Blank lines and '#' comments are ignored. The schedule carries no mesh
// declaration — coordinates are validated against a mesh only when the
// schedule is applied (Validate), so the same file can drive differently
// sized runs of the same topology family.

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"

	"lambmesh/internal/mesh"
)

// FaultEvent is one batch of faults striking at the start of Cycle.
type FaultEvent struct {
	Cycle int
	Nodes []mesh.Coord
	Links []mesh.Link
}

// FaultSchedule is a time-ordered list of fault events. The zero value is
// the empty schedule (a live run with it behaves exactly like a static one).
type FaultSchedule struct {
	Events []FaultEvent
}

// Empty reports whether the schedule contains no faults at all.
func (s FaultSchedule) Empty() bool {
	for _, ev := range s.Events {
		if len(ev.Nodes) > 0 || len(ev.Links) > 0 {
			return false
		}
	}
	return true
}

// Canonical returns the schedule in canonical form: events sorted by cycle,
// same-cycle events merged, nodes and links sorted and deduplicated, and
// empty events dropped. WriteSchedule emits this form, so canonicalization
// is the fixed point of a Read/Write round-trip.
func (s FaultSchedule) Canonical() FaultSchedule {
	byCycle := make(map[int]*FaultEvent)
	var cycles []int
	for _, ev := range s.Events {
		e, ok := byCycle[ev.Cycle]
		if !ok {
			e = &FaultEvent{Cycle: ev.Cycle}
			byCycle[ev.Cycle] = e
			cycles = append(cycles, ev.Cycle)
		}
		e.Nodes = append(e.Nodes, ev.Nodes...)
		e.Links = append(e.Links, ev.Links...)
	}
	sort.Ints(cycles)
	out := FaultSchedule{}
	for _, c := range cycles {
		e := byCycle[c]
		e.Nodes = sortDedupCoords(e.Nodes)
		e.Links = sortDedupLinks(e.Links)
		if len(e.Nodes) == 0 && len(e.Links) == 0 {
			continue
		}
		out.Events = append(out.Events, *e)
	}
	return out
}

// compareCoords orders coordinates lexicographically, shorter ones first.
func compareCoords(a, b mesh.Coord) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return len(a) - len(b)
}

func sortDedupCoords(cs []mesh.Coord) []mesh.Coord {
	sort.SliceStable(cs, func(i, j int) bool { return compareCoords(cs[i], cs[j]) < 0 })
	out := cs[:0]
	for _, c := range cs {
		if len(out) > 0 && compareCoords(out[len(out)-1], c) == 0 {
			continue
		}
		out = append(out, c)
	}
	return out
}

func compareLinks(a, b mesh.Link) int {
	if c := compareCoords(a.From, b.From); c != 0 {
		return c
	}
	if a.Dim != b.Dim {
		return a.Dim - b.Dim
	}
	return a.Dir - b.Dir
}

func sortDedupLinks(ls []mesh.Link) []mesh.Link {
	sort.SliceStable(ls, func(i, j int) bool { return compareLinks(ls[i], ls[j]) < 0 })
	out := ls[:0]
	for _, l := range ls {
		if len(out) > 0 && compareLinks(out[len(out)-1], l) == 0 {
			continue
		}
		out = append(out, l)
	}
	return out
}

// Validate checks every scheduled fault against the mesh: nodes in bounds,
// link tails in bounds with an existing head, cycles nonnegative.
func (s FaultSchedule) Validate(m *mesh.Mesh) error {
	for _, ev := range s.Events {
		if ev.Cycle < 0 {
			return fmt.Errorf("wormhole: fault event at negative cycle %d", ev.Cycle)
		}
		for _, c := range ev.Nodes {
			if !m.Contains(c) {
				return fmt.Errorf("wormhole: scheduled fault %v outside %v", c, m)
			}
		}
		for _, l := range ev.Links {
			if !m.Contains(l.From) {
				return fmt.Errorf("wormhole: scheduled link tail %v outside %v", l.From, m)
			}
			if l.Dim < 0 || l.Dim >= m.Dims() || (l.Dir != 1 && l.Dir != -1) {
				return fmt.Errorf("wormhole: scheduled link %v has bad dim/dir", l)
			}
			if _, ok := m.Neighbor(l.From, l.Dim, l.Dir); !ok {
				return fmt.Errorf("wormhole: scheduled link %v has no head in %v", l, m)
			}
		}
	}
	return nil
}

// WriteSchedule serializes the schedule in canonical form.
func WriteSchedule(w io.Writer, s FaultSchedule) error {
	bw := bufio.NewWriter(w)
	canon := s.Canonical()
	nodes, links := 0, 0
	for _, ev := range canon.Events {
		nodes += len(ev.Nodes)
		links += len(ev.Links)
	}
	fmt.Fprintf(bw, "# lambmesh fault schedule: %d events, %d node faults, %d link faults\n",
		len(canon.Events), nodes, links)
	for _, ev := range canon.Events {
		fmt.Fprintf(bw, "event %d\n", ev.Cycle)
		for _, c := range ev.Nodes {
			fmt.Fprintf(bw, "node %s\n", strings.Trim(c.String(), "()"))
		}
		for _, l := range ev.Links {
			fmt.Fprintf(bw, "link %s %d %+d\n", strings.Trim(l.From.String(), "()"), l.Dim, l.Dir)
		}
	}
	return bw.Flush()
}

// ReadSchedule parses the WriteSchedule format. Coordinates are checked for
// internal consistency only (a link's dimension must index its tail
// coordinate); mesh-bounds checks happen in Validate.
func ReadSchedule(r io.Reader) (FaultSchedule, error) {
	sc := bufio.NewScanner(r)
	var s FaultSchedule
	var cur *FaultEvent
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "event":
			if len(fields) != 2 {
				return FaultSchedule{}, fmt.Errorf("wormhole: line %d: want 'event CYCLE'", lineNo)
			}
			cycle, err := strconv.Atoi(fields[1])
			if err != nil || cycle < 0 {
				return FaultSchedule{}, fmt.Errorf("wormhole: line %d: bad event cycle %q", lineNo, fields[1])
			}
			s.Events = append(s.Events, FaultEvent{Cycle: cycle})
			cur = &s.Events[len(s.Events)-1]
		case "node":
			if cur == nil {
				return FaultSchedule{}, fmt.Errorf("wormhole: line %d: node before any event", lineNo)
			}
			if len(fields) != 2 {
				return FaultSchedule{}, fmt.Errorf("wormhole: line %d: want 'node x,y,...'", lineNo)
			}
			c, err := mesh.ParseCoord(fields[1])
			if err != nil {
				return FaultSchedule{}, fmt.Errorf("wormhole: line %d: %v", lineNo, err)
			}
			cur.Nodes = append(cur.Nodes, c)
		case "link":
			if cur == nil {
				return FaultSchedule{}, fmt.Errorf("wormhole: line %d: link before any event", lineNo)
			}
			if len(fields) != 4 {
				return FaultSchedule{}, fmt.Errorf("wormhole: line %d: want 'link x,y dim dir'", lineNo)
			}
			c, err := mesh.ParseCoord(fields[1])
			if err != nil {
				return FaultSchedule{}, fmt.Errorf("wormhole: line %d: %v", lineNo, err)
			}
			dim, err := strconv.Atoi(fields[2])
			if err != nil || dim < 0 || dim >= len(c) {
				return FaultSchedule{}, fmt.Errorf("wormhole: line %d: bad dimension %q", lineNo, fields[2])
			}
			dir, err := strconv.Atoi(fields[3])
			if err != nil || (dir != 1 && dir != -1) {
				return FaultSchedule{}, fmt.Errorf("wormhole: line %d: bad direction %q", lineNo, fields[3])
			}
			cur.Links = append(cur.Links, mesh.Link{From: c, Dim: dim, Dir: dir})
		default:
			return FaultSchedule{}, fmt.Errorf("wormhole: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return FaultSchedule{}, err
	}
	return s, nil
}

// ReadScheduleFile loads and validates nothing beyond ReadSchedule; it
// exists for CLI convenience.
func ReadScheduleFile(path string) (FaultSchedule, error) {
	f, err := os.Open(path)
	if err != nil {
		return FaultSchedule{}, err
	}
	defer f.Close()
	s, err := ReadSchedule(f)
	if err != nil {
		return FaultSchedule{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// RandomSchedule draws an MTBF-style schedule: single-node fault events
// whose inter-arrival times are exponential with the given mean (in
// cycles), over the horizon [0, horizon). Struck nodes are drawn uniformly
// from the nodes that are good in f and not already scheduled, so every
// event adds exactly one new fault. The schedule is a pure function of the
// rng stream.
func RandomSchedule(f *mesh.FaultSet, mtbf float64, horizon int, rng *rand.Rand) FaultSchedule {
	var s FaultSchedule
	if mtbf <= 0 || horizon <= 0 {
		return s
	}
	m := f.Mesh()
	struck := make(map[int64]bool)
	t := 0.0
	for {
		t += rng.ExpFloat64() * mtbf
		cycle := int(t)
		if cycle >= horizon {
			return s
		}
		// Bounded uniform draw over good, unstruck nodes; give up if the
		// mesh is nearly exhausted rather than loop forever.
		var node mesh.Coord
		for attempt := 0; attempt < 64; attempt++ {
			c := m.CoordOf(rng.Int63n(m.Nodes()))
			if f.NodeFaulty(c) || struck[m.Index(c)] {
				continue
			}
			node = c
			break
		}
		if node == nil {
			return s
		}
		struck[m.Index(node)] = true
		s.Events = append(s.Events, FaultEvent{Cycle: cycle, Nodes: []mesh.Coord{node}})
	}
}
