package core

import (
	"math/rand"
	"runtime"
	"testing"

	"lambmesh/internal/mesh"
	"lambmesh/internal/routing"
)

// sameLambs compares two lamb sets for byte identity: same coordinates in
// the same emitted order. The incremental path promises exactly the full
// pipeline's output, not just an equivalent cover.
func sameLambs(t *testing.T, got, want []mesh.Coord, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d lambs != %d\ngot  %v\nwant %v", ctx, len(got), len(want), got, want)
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("%s: lamb %d = %v, want %v", ctx, i, got[i], want[i])
		}
	}
}

// growthStep draws a random fault delta of the given size, skipping faults
// already present in ref.
func growthStep(m *mesh.Mesh, ref *mesh.FaultSet, rng *rand.Rand, size int) ([]mesh.Coord, []mesh.Link) {
	var dn []mesh.Coord
	var dl []mesh.Link
	for i := 0; i < size; i++ {
		if rng.Intn(3) == 0 {
			for tries := 0; tries < 80; tries++ {
				c := m.CoordOf(rng.Int63n(m.Nodes()))
				dim := rng.Intn(m.Dims())
				dir := 1 - 2*rng.Intn(2)
				l := mesh.Link{From: c, Dim: dim, Dir: dir}
				if _, ok := m.Neighbor(c, dim, dir); ok && !ref.LinkFaulty(l) {
					ref.AddLink(l)
					dl = append(dl, l)
					break
				}
			}
		} else {
			for tries := 0; tries < 80; tries++ {
				c := m.CoordOf(rng.Int63n(m.Nodes()))
				if !ref.NodeFaulty(c) {
					ref.AddNode(c)
					dn = append(dn, c)
					break
				}
			}
		}
	}
	return dn, dl
}

// The tentpole pin: across randomized fault-growth sequences — 2D and 3D
// meshes, node and link faults, KeepLambs on and off, workers 1 and
// NumCPU — every generation's incremental lamb set is byte-identical to a
// full-pipeline Reconfigurer fed the same deltas. Run under -race this
// also exercises the patched matrix fills' parallelism.
func TestIncrementalAddFaultsMatchesFull(t *testing.T) {
	type scenario struct {
		widths    []int
		orders    routing.MultiOrder
		keepLambs bool
	}
	scenarios := []scenario{
		{[]int{12, 12}, routing.UniformAscending(2, 2), true},
		{[]int{12, 12}, routing.MultiOrder{{0, 1}, {1, 0}}, false},
		{[]int{10, 10}, routing.MultiOrder{{1, 0}}, false},
		{[]int{5, 5, 5}, routing.UniformAscending(3, 2), true},
		{[]int{4, 5, 6}, routing.MultiOrder{{2, 0, 1}, {1, 2, 0}}, false},
	}
	for _, workers := range []int{1, runtime.NumCPU()} {
		for si, sc := range scenarios {
			rng := rand.New(rand.NewSource(int64(1000 + si)))
			m := mesh.MustNew(sc.widths...)
			inc, err := NewReconfigurer(m, sc.orders, sc.keepLambs)
			if err != nil {
				t.Fatal(err)
			}
			inc.Workers = workers
			full, err := NewReconfigurer(m, sc.orders, sc.keepLambs)
			if err != nil {
				t.Fatal(err)
			}
			full.Workers = workers
			full.IncrementalThreshold = 0 // always the from-scratch pipeline

			ref := mesh.NewFaultSet(m) // dedup tracker for delta generation
			for gen := 0; gen < 7; gen++ {
				dn, dl := growthStep(m, ref, rng, 1+rng.Intn(3))
				ri, err := inc.AddFaults(dn, dl)
				if err != nil {
					t.Fatalf("scenario %d gen %d incremental: %v", si, gen, err)
				}
				rf, err := full.AddFaults(dn, dl)
				if err != nil {
					t.Fatalf("scenario %d gen %d full: %v", si, gen, err)
				}
				sameLambs(t, ri.Lambs, rf.Lambs,
					"scenario "+string(rune('a'+si)))
				if ri.Stats != rf.Stats {
					t.Fatalf("scenario %d gen %d: stats diverge\ninc  %+v\nfull %+v",
						si, gen, ri.Stats, rf.Stats)
				}
				if gen >= 1 && !inc.LastPhases().Incremental {
					t.Fatalf("scenario %d gen %d: expected the incremental path", si, gen)
				}
				if full.LastPhases().Incremental {
					t.Fatal("threshold 0 must disable the incremental path")
				}
				if err := VerifyLambSet(inc.Faults(), sc.orders, ri.Lambs); err != nil {
					t.Fatalf("scenario %d gen %d: %v", si, gen, err)
				}
			}
		}
	}
}

// A delta larger than the threshold recomputes from scratch — and re-warms,
// so the following small delta is incremental again.
func TestIncrementalThresholdFallback(t *testing.T) {
	m := mesh.MustNew(12, 12)
	orders := routing.UniformAscending(2, 2)
	r, err := NewReconfigurer(m, orders, false)
	if err != nil {
		t.Fatal(err)
	}
	r.IncrementalThreshold = 2
	if _, err := r.AddFaults([]mesh.Coord{mesh.C(1, 1)}, nil); err != nil {
		t.Fatal(err)
	}
	if r.LastPhases().Incremental {
		t.Fatal("generation 1 has no warm state; must be a full solve")
	}
	// Delta of 3 > threshold 2: full.
	if _, err := r.AddFaults([]mesh.Coord{mesh.C(3, 3), mesh.C(5, 5), mesh.C(7, 7)}, nil); err != nil {
		t.Fatal(err)
	}
	if r.LastPhases().Incremental {
		t.Fatal("over-threshold delta must fall back to the full pipeline")
	}
	// Small delta after the full solve: warm again.
	if _, err := r.AddFaults([]mesh.Coord{mesh.C(9, 9)}, nil); err != nil {
		t.Fatal(err)
	}
	if !r.LastPhases().Incremental {
		t.Fatal("full solve should re-warm the incremental state")
	}
	if r.LastPhases().Total <= 0 {
		t.Fatal("phase totals should be positive")
	}
}

// Duplicate faults are excluded from the delta: re-reporting known faults
// is a zero-delta incremental recompute with an unchanged lamb set.
func TestIncrementalDuplicateFaults(t *testing.T) {
	m := mesh.MustNew(12, 12)
	orders := routing.UniformAscending(2, 2)
	r, err := NewReconfigurer(m, orders, false)
	if err != nil {
		t.Fatal(err)
	}
	first := []mesh.Coord{mesh.C(9, 1), mesh.C(11, 6), mesh.C(10, 10)}
	res1, err := r.AddFaults(first, nil)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := r.AddFaults(first, nil) // all duplicates
	if err != nil {
		t.Fatal(err)
	}
	sameLambs(t, res2.Lambs, res1.Lambs, "duplicate delta")
	if !r.LastPhases().Incremental {
		t.Fatal("zero genuine delta should ride the incremental path")
	}
	if r.Faults().Count() != 3 {
		t.Fatalf("fault count = %d, want 3", r.Faults().Count())
	}
}

// Options the patch path cannot honor (reachability retention) silently use
// the full pipeline; phase observability still works for plain Lamb1.
func TestSolverPhases(t *testing.T) {
	m := mesh.MustNew(12, 12)
	f := mesh.NewFaultSet(m)
	f.AddNodes(mesh.C(9, 1), mesh.C(11, 6))
	s := NewSolver()
	if _, err := s.Lamb1(f, routing.UniformAscending(2, 2)); err != nil {
		t.Fatal(err)
	}
	ph := s.LastPhases()
	if ph.Total <= 0 || ph.Incremental {
		t.Fatalf("phases = %+v", ph)
	}
	if ph.Partition+ph.Reach+ph.VCover > ph.Total {
		t.Fatalf("phase sum exceeds total: %+v", ph)
	}
}
