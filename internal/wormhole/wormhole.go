// Package wormhole is a flit-level, cycle-based simulator of wormhole
// routing on faulty meshes — the machine model the lamb method of Ho &
// Stockmeyer (IPDPS 2002) is designed for.
//
// Messages are divided into flits that follow the head flit in a pipeline;
// when the head blocks, the worm stalls in place across several routers
// (Dally & Seitz [8]). Each directed physical link carries one flit per
// cycle and multiplexes a configurable number of virtual channels, each
// with its own small FIFO buffer. Routes are k-round dimension-ordered:
// round t's hops use virtual channel t, which is exactly the discipline
// that makes k-round routing deadlock-free. Running the same traffic with
// fewer virtual channels than rounds demonstrates the deadlocks the scheme
// exists to prevent; the simulator detects them with a stall watchdog.
package wormhole

import (
	"fmt"

	"lambmesh/internal/mesh"
)

// Config sets the router microarchitecture.
type Config struct {
	// VirtualChannels per directed physical link. The paper's Blue Gene
	// constraint is 2 (requirement iii of Section 1).
	VirtualChannels int
	// BufferDepth is the per-VC FIFO capacity in flits.
	BufferDepth int
	// StallCycles without any flit movement before declaring deadlock.
	StallCycles int
	// MaxCycles hard-stops the simulation.
	MaxCycles int
}

// DefaultConfig: 2 VCs, 2-flit buffers, generous watchdog.
func DefaultConfig() Config {
	return Config{VirtualChannels: 2, BufferDepth: 2, StallCycles: 1000, MaxCycles: 1_000_000}
}

// Hop is one link traversal on a message route, with the virtual channel it
// uses (the round number, clamped to the available VCs).
type Hop struct {
	Link mesh.Link
	VC   int
}

// Message is a wormhole packet.
type Message struct {
	ID       int
	Src, Dst mesh.Coord
	Length   int // flits
	InjectAt int // earliest injection cycle
	Hops     []Hop

	// Results, valid after Run.
	Delivered   bool
	DoneCycle   int
	StartCycle  int // cycle the head flit entered the network
	PathTurns   int
	PathHops    int
	remaining   int   // flits still at the source
	ejected     int   // flits consumed at the destination
	buf         []int // flits currently in each hop's buffer
	headHop     int   // furthest hop the head has entered; -1 before injection
	injectedAny bool
}

// Latency returns delivery latency in cycles (delivery - earliest inject).
func (m *Message) Latency() int { return m.DoneCycle - m.InjectAt }

// vcKey identifies one virtual channel of one directed physical link.
type vcKey struct {
	from int64
	dim  int
	dir  int
	vc   int
}

type vcState struct {
	owner int // message ID, or -1
	flits int
}

type chanKey struct {
	from int64
	dim  int
	dir  int
}

// Network simulates a set of messages over a faulty mesh.
type Network struct {
	cfg    Config
	m      *mesh.Mesh
	faults *mesh.FaultSet
	msgs   []*Message

	vcs      map[vcKey]*vcState
	chanUsed map[chanKey]bool
	busy     map[chanKey]int // cycles each physical channel carried a flit

	// Result summary, valid after Run.
	Cycles     int
	Deadlocked bool
	MovesTotal int
}

// NewNetwork creates a simulator over the faulty mesh for the given
// messages. Message routes must already avoid faults (build them with
// RouteMessage); the constructor rejects routes through faults and routes
// that reuse a (link, VC) pair, which would self-deadlock in hardware.
func NewNetwork(f *mesh.FaultSet, cfg Config, msgs []*Message) (*Network, error) {
	if cfg.VirtualChannels < 1 || cfg.BufferDepth < 1 {
		return nil, fmt.Errorf("wormhole: need at least 1 VC and 1-flit buffers")
	}
	if cfg.StallCycles < 1 {
		cfg.StallCycles = 1000
	}
	if cfg.MaxCycles < 1 {
		cfg.MaxCycles = 1_000_000
	}
	n := &Network{
		cfg:      cfg,
		m:        f.Mesh(),
		faults:   f,
		msgs:     msgs,
		vcs:      make(map[vcKey]*vcState),
		chanUsed: make(map[chanKey]bool),
		busy:     make(map[chanKey]int),
	}
	for _, msg := range msgs {
		if msg.Length < 1 {
			return nil, fmt.Errorf("wormhole: message %d has no flits", msg.ID)
		}
		seen := make(map[vcKey]bool, len(msg.Hops))
		for _, h := range msg.Hops {
			if h.VC < 0 || h.VC >= cfg.VirtualChannels {
				return nil, fmt.Errorf("wormhole: message %d uses VC %d of %d", msg.ID, h.VC, cfg.VirtualChannels)
			}
			if !f.Usable(h.Link) {
				return nil, fmt.Errorf("wormhole: message %d routed over unusable link %v", msg.ID, h.Link)
			}
			k := n.key(h)
			if seen[k] {
				return nil, fmt.Errorf("wormhole: message %d reuses link %v on VC %d (self-deadlock)", msg.ID, h.Link, h.VC)
			}
			seen[k] = true
		}
		msg.remaining = msg.Length
		msg.headHop = -1
		msg.buf = make([]int, len(msg.Hops))
	}
	return n, nil
}

func (n *Network) key(h Hop) vcKey {
	return vcKey{from: n.m.Index(h.Link.From), dim: h.Link.Dim, dir: h.Link.Dir, vc: h.VC}
}

func (n *Network) vc(h Hop) *vcState {
	k := n.key(h)
	st, ok := n.vcs[k]
	if !ok {
		st = &vcState{owner: -1}
		n.vcs[k] = st
	}
	return st
}

func (n *Network) channelFree(h Hop) bool {
	return !n.chanUsed[chanKey{from: n.m.Index(h.Link.From), dim: h.Link.Dim, dir: h.Link.Dir}]
}

func (n *Network) useChannel(h Hop) {
	k := chanKey{from: n.m.Index(h.Link.From), dim: h.Link.Dim, dir: h.Link.Dir}
	n.chanUsed[k] = true
	n.busy[k]++
}

// LinkUtilization returns the mean and maximum fraction of cycles that the
// physical channels touched by the workload spent carrying flits — the
// congestion signal behind the Section 2.1 intermediate-choice heuristic.
func (n *Network) LinkUtilization() (mean, max float64) {
	if n.Cycles == 0 || len(n.busy) == 0 {
		return 0, 0
	}
	var sum float64
	for _, b := range n.busy {
		u := float64(b) / float64(n.Cycles)
		sum += u
		if u > max {
			max = u
		}
	}
	return sum / float64(len(n.busy)), max
}

// Run simulates until every message is delivered, a deadlock is detected,
// or MaxCycles elapse. It returns an error only for malformed setups;
// deadlock is reported via the Deadlocked field (it is an expected outcome
// of under-provisioned configurations).
func (n *Network) Run() error {
	active := len(n.msgs)
	for _, m := range n.msgs {
		if len(m.Hops) == 0 {
			// Degenerate self-delivery: no network involvement.
			m.Delivered = true
			m.DoneCycle = m.InjectAt
			m.StartCycle = m.InjectAt
			active--
		}
	}
	stall := 0
	for cycle := 0; active > 0 && cycle < n.cfg.MaxCycles; cycle++ {
		moves := n.step(cycle)
		n.MovesTotal += moves
		n.Cycles = cycle + 1
		if moves == 0 && n.anyRunnable(cycle) {
			stall++
			if stall >= n.cfg.StallCycles {
				n.Deadlocked = true
				return nil
			}
		} else {
			stall = 0
		}
		for _, m := range n.msgs {
			if !m.Delivered && m.ejected == m.Length {
				m.Delivered = true
				m.DoneCycle = cycle
				active--
			}
		}
	}
	return nil
}

// anyRunnable reports whether some undelivered message has been released
// (so a zero-move cycle indicates contention, not an empty future).
func (n *Network) anyRunnable(cycle int) bool {
	for _, m := range n.msgs {
		if !m.Delivered && len(m.Hops) > 0 && m.InjectAt <= cycle && m.ejected < m.Length {
			return true
		}
	}
	return false
}

// step advances one cycle and returns the number of flit movements.
// Messages are served in an order rotated by cycle for long-run fairness;
// within a message, flits advance head-first so a pipeline compresses and
// refills like hardware.
func (n *Network) step(cycle int) int {
	for k := range n.chanUsed {
		delete(n.chanUsed, k)
	}
	moves := 0
	count := len(n.msgs)
	for off := 0; off < count; off++ {
		m := n.msgs[(off+cycle)%count]
		if m.Delivered || len(m.Hops) == 0 || m.InjectAt > cycle {
			continue
		}
		moves += n.stepMessage(m, cycle)
	}
	return moves
}

func (n *Network) stepMessage(m *Message, cycle int) int {
	moves := 0
	last := len(m.Hops) - 1

	// Ejection: the destination consumes one flit per cycle.
	if m.buf[last] > 0 {
		m.buf[last]--
		n.vc(m.Hops[last]).flits--
		m.ejected++
		moves++
		n.maybeRelease(m, last)
	}

	// Advance in-network flits head-first.
	for i := minInt(m.headHop, last-1); i >= 0; i-- {
		if m.buf[i] == 0 {
			continue
		}
		next := m.Hops[i+1]
		st := n.vc(next)
		isHead := i == m.headHop
		if isHead {
			if st.owner != -1 && st.owner != m.ID {
				continue
			}
		} else if st.owner != m.ID {
			continue
		}
		if st.flits >= n.cfg.BufferDepth || !n.channelFree(next) {
			continue
		}
		st.owner = m.ID
		st.flits++
		m.buf[i+1]++
		m.buf[i]--
		n.vc(m.Hops[i]).flits--
		n.useChannel(next)
		if isHead {
			m.headHop = i + 1
		}
		moves++
		n.maybeRelease(m, i)
	}

	// Injection of the next flit from the source into hop 0.
	if m.remaining > 0 {
		first := m.Hops[0]
		st := n.vc(first)
		ok := st.owner == m.ID || (st.owner == -1 && !m.injectedAny)
		if ok && st.flits < n.cfg.BufferDepth && n.channelFree(first) {
			st.owner = m.ID
			st.flits++
			m.buf[0]++
			m.remaining--
			n.useChannel(first)
			if !m.injectedAny {
				m.injectedAny = true
				m.headHop = 0
				m.StartCycle = cycle
			}
			moves++
		}
	}
	return moves
}

// maybeRelease frees the VC at hop i once the tail has passed it: the
// buffer is empty and no more of the message's flits can arrive there.
func (n *Network) maybeRelease(m *Message, i int) {
	if m.buf[i] != 0 {
		return
	}
	if m.remaining > 0 {
		return
	}
	for j := 0; j < i; j++ {
		if m.buf[j] > 0 {
			return
		}
	}
	st := n.vc(m.Hops[i])
	if st.owner == m.ID && st.flits == 0 {
		st.owner = -1
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
