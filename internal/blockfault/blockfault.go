// Package blockfault implements the rectangular fault-block baseline the
// paper compares against (Boppana & Chalasani [4]): arbitrary node faults
// on a 2D mesh are first *inactivated* into disjoint rectangular fault
// regions whose fault rings do not overlap, and messages then use XY
// routing that detours around the rings.
//
// Two quantities matter for the comparison in Section 1 of Ho & Stockmeyer:
//
//   - how many good nodes must be inactivated to rectangularize the fault
//     regions (the paper's open question, versus the number of lambs), and
//   - how many turns ring detours add (ring schemes can take Theta(n)
//     turns, versus at most kd-1 for k-round dimension-ordered routing).
//
// An inactivated node, unlike a lamb, can neither process *nor route*.
package blockfault

import (
	"fmt"

	"lambmesh/internal/mesh"
	"lambmesh/internal/rect"
)

// Model is the rectangularized fault structure.
type Model struct {
	Mesh *mesh.Mesh
	// Regions are the disjoint fault rectangles; their fault rings (the
	// good-node boundary one step around each region) do not overlap.
	Regions []rect.Rect
	// Inactivated counts good nodes swallowed by the regions.
	Inactivated int
}

// Build rectangularizes the node faults of a 2D mesh: each fault starts as
// a 1x1 region, and regions whose one-step expansions intersect (meaning
// their fault rings would share a node) are merged into their bounding box
// until a fixpoint.
func Build(f *mesh.FaultSet) (*Model, error) {
	m := f.Mesh()
	if m.Dims() != 2 {
		return nil, fmt.Errorf("blockfault: the fault-ring baseline is defined for 2D meshes")
	}
	if m.Torus() {
		return nil, fmt.Errorf("blockfault: meshes only")
	}
	if f.NumLinkFaults() > 0 {
		return nil, fmt.Errorf("blockfault: link faults are not part of the block-fault model")
	}
	var regions []rect.Rect
	for _, c := range f.NodeFaults() {
		regions = append(regions, rect.Point(c))
	}
	merged := true
	for merged {
		merged = false
	outer:
		for i := 0; i < len(regions); i++ {
			for j := i + 1; j < len(regions); j++ {
				if expand(regions[i], 1).Intersects(expand(regions[j], 1)) {
					regions[i] = boundingBox(regions[i], regions[j])
					regions = append(regions[:j], regions[j+1:]...)
					merged = true
					break outer
				}
			}
		}
	}
	mod := &Model{Mesh: m, Regions: regions}
	for _, r := range regions {
		mod.Inactivated += int(clip(r, m).Size())
	}
	mod.Inactivated -= f.NumNodeFaults()
	return mod, nil
}

// expand grows a box by delta in every direction (may exceed the mesh;
// callers only use it for intersection tests).
func expand(r rect.Rect, delta int) rect.Rect {
	out := make(rect.Rect, len(r))
	for i, iv := range r {
		out[i] = rect.Interval{Lo: iv.Lo - delta, Hi: iv.Hi + delta}
	}
	return out
}

func boundingBox(a, b rect.Rect) rect.Rect {
	out := make(rect.Rect, len(a))
	for i := range a {
		lo, hi := a[i].Lo, a[i].Hi
		if b[i].Lo < lo {
			lo = b[i].Lo
		}
		if b[i].Hi > hi {
			hi = b[i].Hi
		}
		out[i] = rect.Interval{Lo: lo, Hi: hi}
	}
	return out
}

func clip(r rect.Rect, m *mesh.Mesh) rect.Rect {
	return r.Intersect(rect.Full(m))
}

// Blocked reports whether node c is faulty or inactivated (inside a
// region).
func (mod *Model) Blocked(c mesh.Coord) bool {
	for _, r := range mod.Regions {
		if r.Contains(c) {
			return true
		}
	}
	return false
}

// regionAt returns the region containing c.
func (mod *Model) regionAt(c mesh.Coord) (rect.Rect, bool) {
	for _, r := range mod.Regions {
		if r.Contains(c) {
			return r, true
		}
	}
	return nil, false
}

// RouteXY routes from src to dst with XY ordering, detouring around fault
// regions along their rings (a simplified f-cube-style router: when the
// next hop would enter a region, the message walks to the nearer ring side,
// crosses along the ring, and resumes). Returns the full node path. Both
// endpoints must be active (not faulty/inactivated).
func (mod *Model) RouteXY(src, dst mesh.Coord) ([]mesh.Coord, error) {
	if mod.Blocked(src) || mod.Blocked(dst) {
		return nil, fmt.Errorf("blockfault: endpoint inside a fault region")
	}
	path := []mesh.Coord{src.Clone()}
	cur := src.Clone()
	var err error
	for dim := 0; dim < 2; dim++ {
		path, cur, err = mod.correct(path, cur, dst, dim)
		if err != nil {
			return nil, err
		}
	}
	return path, nil
}

// correct advances cur along dim to dst[dim], detouring around regions.
func (mod *Model) correct(path []mesh.Coord, cur, dst mesh.Coord, dim int) ([]mesh.Coord, mesh.Coord, error) {
	other := 1 - dim
	for cur[dim] != dst[dim] {
		dir := 1
		if dst[dim] < cur[dim] {
			dir = -1
		}
		next := cur.Clone()
		next[dim] += dir
		if r, blocked := mod.regionAt(next); blocked {
			var err error
			path, cur, err = mod.detour(path, cur, dst, r, dim, dir, other)
			if err != nil {
				return nil, nil, err
			}
			continue
		}
		cur = next
		path = append(path, cur.Clone())
	}
	return path, cur, nil
}

// detour walks around region r. In the usual case it sidesteps along
// `other` to the nearer ring side, crosses along dim to just past the
// region, and returns to the original `other` coordinate. When the target
// coordinate dst[dim] lies within the region's span, returning would
// re-enter the region from the far side, so the detour instead exits on the
// ring side facing dst[other] and stops at dst[dim], leaving the remaining
// correction to the next phase.
func (mod *Model) detour(path []mesh.Coord, cur, dst mesh.Coord, r rect.Rect, dim, dir, other int) ([]mesh.Coord, mesh.Coord, error) {
	n := mod.Mesh.Width(other)
	lowSide := r[other].Lo - 1
	highSide := r[other].Hi + 1
	walk := func(d, target int) {
		for cur[d] != target {
			step := 1
			if target < cur[d] {
				step = -1
			}
			cur = cur.Clone()
			cur[d] += step
			path = append(path, cur.Clone())
		}
	}

	if r[dim].Contains(dst[dim]) {
		// Overshoot case: stop at dst[dim] on the ring side toward
		// dst[other] (dst is not blocked, so it lies strictly on one side).
		side := highSide
		if dst[other] < r[other].Lo {
			side = lowSide
		}
		if side < 0 || side > n-1 {
			return nil, nil, fmt.Errorf("blockfault: region %v touches the mesh edge; no ring detour exists", r)
		}
		walk(other, side)
		walk(dim, dst[dim])
		return path, cur, nil
	}

	var side int
	distLow := cur[other] - lowSide
	distHigh := highSide - cur[other]
	switch {
	case lowSide >= 0 && (highSide > n-1 || distLow <= distHigh):
		side = lowSide
	case highSide <= n-1:
		side = highSide
	default:
		return nil, nil, fmt.Errorf("blockfault: region %v spans the mesh; no ring detour exists", r)
	}
	exit := r[dim].Hi + 1
	if dir < 0 {
		exit = r[dim].Lo - 1
	}
	if exit < 0 || exit > mod.Mesh.Width(dim)-1 {
		return nil, nil, fmt.Errorf("blockfault: region %v touches the mesh edge along the travel axis", r)
	}
	orig := cur[other]
	walk(other, side)
	walk(dim, exit)
	walk(other, orig)
	return path, cur, nil
}
