package campaign

import (
	"fmt"
	"math"
	"testing"

	"lambmesh/internal/mesh"
)

func TestParseModel(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Model
	}{{"node", ModelNode}, {"link", ModelLink}, {"mixed", ModelMixed}} {
		got, err := ParseModel(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseModel(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("%v.String() = %q, want %q", got, got.String(), tc.in)
		}
	}
	if _, err := ParseModel("bogus"); err == nil {
		t.Fatal("ParseModel should reject unknown models")
	}
}

func TestFailProb(t *testing.T) {
	// MTBF: T = theta gives 1 - 1/e.
	p, err := ProcSpec{Proc: ProcMTBF, Mission: 100, Theta: 100}.FailProb()
	if err != nil || math.Abs(p-(1-1/math.E)) > 1e-12 {
		t.Fatalf("mtbf prob = %v, %v", p, err)
	}
	// Weibull with beta = 1 reduces to MTBF.
	w, err := ProcSpec{Proc: ProcWeibull, Mission: 100, Eta: 100, Beta: 1}.FailProb()
	if err != nil || math.Abs(w-p) > 1e-12 {
		t.Fatalf("weibull(beta=1) = %v, want %v (%v)", w, p, err)
	}
	if _, err := (ProcSpec{Proc: ProcFixed, Count: 3}).FailProb(); err == nil {
		t.Fatal("fixed process should have no failure probability")
	}
	if _, err := (ProcSpec{Proc: ProcMTBF, Mission: 1, Theta: 0}).FailProb(); err == nil {
		t.Fatal("theta = 0 should be rejected")
	}
	if _, err := (ProcSpec{Proc: ProcWeibull, Mission: 1, Eta: 1, Beta: 0}).FailProb(); err == nil {
		t.Fatal("beta = 0 should be rejected")
	}
}

func TestSamplerFixed(t *testing.T) {
	s, err := newSampler(ProcSpec{Proc: ProcFixed, Count: 5}, 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	r := newRNG(7)
	for i := 0; i < 100; i++ {
		if got := s.draw(&r); got != 5 {
			t.Fatalf("fixed sampler drew %d", got)
		}
	}
	if _, err := newSampler(ProcSpec{Proc: ProcFixed, Count: 60}, 100, 50); err == nil {
		t.Fatal("fixed count above maxCount should be rejected")
	}
}

// TestSamplerBinomial draws many counts and checks the empirical mean and
// variance against Binomial(n, p), and that draws respect the cap.
func TestSamplerBinomial(t *testing.T) {
	const n, mission, theta = 1000, 10.0, 95.0
	ps := ProcSpec{Proc: ProcMTBF, Mission: mission, Theta: theta}
	p, _ := ps.FailProb()
	s, err := newSampler(ps, n, n/2)
	if err != nil {
		t.Fatal(err)
	}
	r := newRNG(11)
	const trials = 200000
	var sum, sq float64
	for i := 0; i < trials; i++ {
		c := s.draw(&r)
		if c < 0 || c > n/2 {
			t.Fatalf("draw %d outside [0,%d]", c, n/2)
		}
		sum += float64(c)
		sq += float64(c) * float64(c)
	}
	mean := sum / trials
	wantMean := float64(n) * p
	sd := math.Sqrt(float64(n) * p * (1 - p))
	if math.Abs(mean-wantMean) > 5*sd/math.Sqrt(trials)+0.01 {
		t.Fatalf("empirical mean %v, want %v", mean, wantMean)
	}
	varr := sq/trials - mean*mean
	if math.Abs(varr-sd*sd) > 0.05*sd*sd {
		t.Fatalf("empirical var %v, want %v", varr, sd*sd)
	}
}

// TestSamplerEdgeCases covers the p = 0 and p ~ 1 tabulation branches.
func TestSamplerEdgeCases(t *testing.T) {
	s, err := newSampler(ProcSpec{Proc: ProcMTBF, Mission: 0, Theta: 10}, 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	r := newRNG(1)
	if got := s.draw(&r); got != 0 {
		t.Fatalf("p=0 sampler drew %d", got)
	}
	// Mission >> theta: p indistinguishable from 1. With the cap below the
	// population the whole point mass sits above it — rejected, not capped.
	if _, err := newSampler(ProcSpec{Proc: ProcMTBF, Mission: 1e9, Theta: 1}, 100, 50); err == nil {
		t.Fatal("p~1 spec with cap below population should be rejected")
	}
	// With the cap at the full population it is representable exactly.
	s, err = newSampler(ProcSpec{Proc: ProcMTBF, Mission: 1e9, Theta: 1}, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.draw(&r); got != 100 {
		t.Fatalf("p~1 sampler drew %d, want all 100 sites", got)
	}
}

// TestSamplerRejectsTruncation pins the tail check: a process whose count
// distribution has appreciable mass above the cap is rejected at build time
// instead of silently simulating a different process, while one whose mass
// sits comfortably below the cap still builds.
func TestSamplerRejectsTruncation(t *testing.T) {
	// p = 0.9: mean 900 of 1000 sites, nearly all mass above the 500 cap.
	hot := ProcSpec{Proc: ProcMTBF, Mission: math.Log(10), Theta: 1}
	if _, err := newSampler(hot, 1000, 500); err == nil {
		t.Fatal("p=0.9 spec should be rejected at a 500/1000 cap")
	}
	// p = 0.4: mean 400, sd ~15.5 — the 500 cap is 6.4 sigma out, tail
	// mass far below the threshold.
	warm := ProcSpec{Proc: ProcMTBF, Mission: -math.Log(0.6), Theta: 1}
	s, err := newSampler(warm, 1000, 500)
	if err != nil {
		t.Fatalf("p=0.4 spec should build: %v", err)
	}
	r := newRNG(3)
	if c := s.draw(&r); c < 0 || c > 500 {
		t.Fatalf("draw %d outside [0,500]", c)
	}
}

// TestDrawFaultsSaturates pins the ModelMixed termination guarantee: a
// count above what the mesh can absorb (node faults kill incident links,
// so the mixed site population overstates capacity) must stop at
// saturation — every node faulty — rather than rejection-sample forever.
func TestDrawFaultsSaturates(t *testing.T) {
	m := mesh.MustNew(3, 3)
	f := mesh.NewFaultSet(m)
	c := make(mesh.Coord, m.Dims())
	h := make(mesh.Coord, m.Dims())
	sites := int(failureSites(m, ModelMixed))
	for seed := int64(0); seed < 50; seed++ {
		r := newRNG(seed)
		drawFaults(m, f, ModelMixed, sites, &r, c, h) // over-ask: > capacity
		if got := f.NumNodeFaults(); got != int(m.Nodes()) {
			t.Fatalf("seed %d: saturated draw left %d of %d nodes alive",
				seed, int(m.Nodes())-got, m.Nodes())
		}
		if f.Count() > sites {
			t.Fatalf("seed %d: placed %d faults on %d sites", seed, f.Count(), sites)
		}
	}
}

// TestDrawFaultsDeterministic checks fault draws are a pure function of the
// RNG seed, produce the exact requested count, and respect model semantics.
func TestDrawFaultsDeterministic(t *testing.T) {
	m := mesh.MustNew(6, 6)
	for _, model := range []Model{ModelNode, ModelLink, ModelMixed} {
		f1 := mesh.NewFaultSet(m)
		f2 := mesh.NewFaultSet(m)
		c := make(mesh.Coord, m.Dims())
		h := make(mesh.Coord, m.Dims())
		for seed := int64(0); seed < 20; seed++ {
			r1 := newRNG(seed)
			r2 := newRNG(seed)
			drawFaults(m, f1, model, 5, &r1, c, h)
			drawFaults(m, f2, model, 5, &r2, c, h)
			if f1.Count() != 5 || f2.Count() != 5 {
				t.Fatalf("%v seed %d: counts %d, %d", model, seed, f1.Count(), f2.Count())
			}
			k1 := fmt.Sprint(f1.NodeFaults(), f1.LinkFaults())
			k2 := fmt.Sprint(f2.NodeFaults(), f2.LinkFaults())
			if k1 != k2 {
				t.Fatalf("%v seed %d: same seed drew different fault sets:\n%s\n%s", model, seed, k1, k2)
			}
			switch model {
			case ModelNode:
				if f1.NumLinkFaults() != 0 {
					t.Fatalf("node model drew links")
				}
			case ModelLink:
				if f1.NumNodeFaults() != 0 {
					t.Fatalf("link model drew nodes")
				}
				for _, l := range f1.LinkFaults() {
					if f1.NodeFaulty(l.From) {
						t.Fatalf("link fault with faulty tail %v", l)
					}
				}
			}
		}
	}
}
